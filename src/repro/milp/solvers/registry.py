"""Backend registry: dispatch ``solve(model, backend=...)``.

The registry is also where the optional presolve layer lives: with
``presolve=True`` the model's standard form is reduced once (bound
propagation, big-M tightening, fixed-column elimination, symmetry rows,
warm-start objective cutoff) and the *reduced* form is handed to the
backend; the returned solution is postsolved back to the original space, so
callers — including the independent certifier — never see reduced-space
values.

It is also the single choke point for the canonical solve cache
(:mod:`repro.milp.cache`): with ``cache=...`` every backend — bnb, simplex,
highs, portfolio — checks the cache before solving and stores
proven-optimal results after.  A hit is served only after it re-certifies
against the requesting model's raw standard form; a hit that fails
certification is evicted and the model is re-solved.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Callable, Mapping, Sequence

import numpy as np

from repro.milp.expr import Variable
from repro.milp.model import Model, StandardForm
from repro.milp.solution import Solution, SolveStatus

if TYPE_CHECKING:
    from repro.milp.cache import SolveCache


def _solve_highs(model: Model, **options) -> Solution:
    from repro.milp.solvers.scipy_backend import solve_highs

    return solve_highs(model, **options)


def _solve_bnb(model: Model, **options) -> Solution:
    from repro.milp.solvers.branch_and_bound import solve_bnb

    return solve_bnb(model, **options)


def _solve_simplex(model: Model, **options) -> Solution:
    from repro.milp.solvers.simplex import solve_simplex

    return solve_simplex(model, **options)


def _solve_portfolio(model: Model, **options) -> Solution:
    from repro.milp.solvers.portfolio import solve_portfolio

    return solve_portfolio(model, **options)


_BACKENDS: dict[str, Callable[..., Solution]] = {
    "highs": _solve_highs,
    "bnb": _solve_bnb,
    "simplex": _solve_simplex,
    "portfolio": _solve_portfolio,
}

#: Backends that accept a ``warm_start`` incumbent (HiGHS via scipy exposes
#: no warm-start API; for it the warm start still powers the presolve
#: objective cutoff).
_WARM_START_BACKENDS = frozenset({"bnb", "portfolio"})

#: Backends whose LP relaxations benefit from Savelsbergh coefficient
#: tightening.  HiGHS runs its own (stronger) presolve and its heuristics
#: measurably degrade on pre-shrunk big-M rows, so it gets bound
#: propagation, row/column elimination, and the cutoff row — but keeps the
#: original coefficients.
_COEF_TIGHTEN_BACKENDS = frozenset({"bnb", "portfolio", "simplex"})


def available_backends() -> tuple[str, ...]:
    """Names accepted by :func:`solve`."""
    return tuple(_BACKENDS)


def _presolved_outcome(backend: str, form: StandardForm, result,
                       status: SolveStatus) -> Solution:
    """A Solution for an outcome presolve decided without the backend."""
    from repro.milp.telemetry import SolveTelemetry

    telemetry = SolveTelemetry(
        backend=backend, status=status.value,
        n_variables=len(form.variables),
        n_integer=int(np.count_nonzero(form.integrality)),
        n_constraints=form.a_matrix.shape[0],
        presolve=result.report.to_dict())
    if status is SolveStatus.OPTIMAL:
        objective = float(result.reduced.c0)
        if form.maximize:
            objective = -objective
        telemetry.gap = 0.0
        telemetry.record_incumbent(0.0, objective)
        return Solution(status=status, objective=objective, bound=objective,
                        values=dict(result.fixed), backend=backend,
                        message="solved entirely by presolve",
                        telemetry=telemetry)
    telemetry.gap = float("inf")
    return Solution(status=status, backend=backend,
                    message="presolve detected infeasibility",
                    telemetry=telemetry)


def solve(model: Model, backend: str = "highs", *,
          presolve: bool = False,
          warm_start: Mapping[Variable, float] | None = None,
          symmetry_groups: Sequence[Sequence[Variable]] = (),
          cache: "SolveCache | None" = None,
          **options) -> Solution:
    """Solve ``model`` with the named backend.

    Args:
        model: the model to solve.
        backend: one of :func:`available_backends` — ``"highs"`` (HiGHS via
            SciPy; the default), ``"bnb"`` (from-scratch branch-and-bound),
            ``"simplex"`` (pure-NumPy simplex; LPs only), or ``"portfolio"``
            (race HiGHS against the self-contained branch-and-bound and
            keep the first proven-optimal result).
        presolve: run the solver-independent presolve layer
            (:mod:`repro.milp.presolve`) and hand the backend the reduced
            form; the solution is postsolved to the original space and its
            telemetry carries the :class:`~repro.milp.presolve.PresolveReport`.
        warm_start: a known-feasible full-space assignment.  Seeds the
            branch-and-bound incumbent (``bnb`` / ``portfolio``) and, with
            ``presolve=True``, adds an objective-cutoff row for any backend.
        symmetry_groups: groups of interchangeable variables handed to
            presolve for symmetry-breaking rows (ignored without presolve).
        cache: a :class:`~repro.milp.cache.SolveCache`; when given, the
            model's canonical structural hash is looked up before any
            solving happens, and a proven-OPTIMAL result is stored after.
            Hits are re-certified against the raw standard form before
            being served (see :mod:`repro.milp.cache`).  The key folds in
            ``backend``, ``presolve``, warm-start presence, and the
            ``mip_rel_gap`` / ``int_tol`` tolerances, so configurations
            that could return different optimal vertices never share an
            entry.
        **options: backend-specific options such as ``time_limit``,
            ``mip_rel_gap``, ``node_limit``, ``lp_engine``, ``int_tol``.

    Returns:
        The backend's :class:`~repro.milp.solution.Solution`.
    """
    try:
        fn = _BACKENDS[backend]
    except KeyError:
        raise ValueError(
            f"unknown backend {backend!r}; available: {available_backends()}"
        ) from None

    form: StandardForm | None = None
    cache_key: str | None = None
    key_seconds = 0.0
    if cache is not None:
        from repro.milp import cache as cache_mod

        form = model.to_standard_form()
        started = time.perf_counter()
        cache_key = cache_mod.canonical_form_key(form, context=(
            backend, bool(presolve), warm_start is not None,
            cache_mod._q(float(options.get("mip_rel_gap", 1e-4))),
            cache_mod._q(float(options.get("int_tol", 1e-6)))))
        key_seconds = time.perf_counter() - started
        cache.stats.key_seconds += key_seconds
        served = cache_mod.serve_cached(
            cache, cache_key, model, form,
            int_tol=float(options.get("int_tol", 1e-6)),
            mip_rel_gap=float(options.get("mip_rel_gap", 1e-4)),
            key_seconds=key_seconds)
        if served is not None:
            return served

    solution = _solve_uncached(fn, model, backend, form,
                               presolve=presolve, warm_start=warm_start,
                               symmetry_groups=symmetry_groups, **options)
    if cache is not None and cache_key is not None and form is not None:
        from repro.milp import cache as cache_mod

        cache_mod.record_store(cache, cache_key, solution, form,
                               key_seconds=key_seconds)
    return solution


def _solve_uncached(fn: Callable[..., Solution], model: Model, backend: str,
                    form: StandardForm | None, *, presolve: bool,
                    warm_start: Mapping[Variable, float] | None,
                    symmetry_groups: Sequence[Sequence[Variable]],
                    **options) -> Solution:
    """The pre-cache solve path: optional presolve, then the backend."""
    if not presolve:
        if warm_start is not None and backend in _WARM_START_BACKENDS:
            options["warm_start"] = warm_start
        if form is not None:
            options["form"] = form
        return fn(model, **options)

    from repro.milp.presolve import internal_objective, presolve_form

    if form is None:
        form = model.to_standard_form()
    cutoff = internal_objective(form, warm_start) if warm_start else None
    result = presolve_form(
        form, symmetry_groups=symmetry_groups, objective_cutoff=cutoff,
        coefficient_tightening=backend in _COEF_TIGHTEN_BACKENDS)
    if result.infeasible:
        return _presolved_outcome(backend, form, result,
                                  SolveStatus.INFEASIBLE)
    if not result.reduced.variables:
        return _presolved_outcome(backend, form, result, SolveStatus.OPTIMAL)
    if warm_start is not None and backend in _WARM_START_BACKENDS:
        mapped = result.map_warm_start(warm_start)
        if mapped is not None:
            options["warm_start"] = mapped
    solution = fn(model, form=result.reduced, **options)
    return result.postsolve_solution(solution)
