"""Backend registry: dispatch ``solve(model, backend=...)``."""

from __future__ import annotations

from typing import Callable

from repro.milp.model import Model
from repro.milp.solution import Solution


def _solve_highs(model: Model, **options) -> Solution:
    from repro.milp.solvers.scipy_backend import solve_highs

    return solve_highs(model, **options)


def _solve_bnb(model: Model, **options) -> Solution:
    from repro.milp.solvers.branch_and_bound import solve_bnb

    return solve_bnb(model, **options)


def _solve_simplex(model: Model, **options) -> Solution:
    from repro.milp.solvers.simplex import solve_simplex

    return solve_simplex(model, **options)


def _solve_portfolio(model: Model, **options) -> Solution:
    from repro.milp.solvers.portfolio import solve_portfolio

    return solve_portfolio(model, **options)


_BACKENDS: dict[str, Callable[..., Solution]] = {
    "highs": _solve_highs,
    "bnb": _solve_bnb,
    "simplex": _solve_simplex,
    "portfolio": _solve_portfolio,
}


def available_backends() -> tuple[str, ...]:
    """Names accepted by :func:`solve`."""
    return tuple(_BACKENDS)


def solve(model: Model, backend: str = "highs", **options) -> Solution:
    """Solve ``model`` with the named backend.

    Args:
        model: the model to solve.
        backend: one of :func:`available_backends` — ``"highs"`` (HiGHS via
            SciPy; the default), ``"bnb"`` (from-scratch branch-and-bound),
            ``"simplex"`` (pure-NumPy simplex; LPs only), or ``"portfolio"``
            (race HiGHS against the self-contained branch-and-bound and
            keep the first proven-optimal result).
        **options: backend-specific options such as ``time_limit``,
            ``mip_rel_gap``, ``node_limit``, ``lp_engine``, ``int_tol``.

    Returns:
        The backend's :class:`~repro.milp.solution.Solution`.
    """
    try:
        fn = _BACKENDS[backend]
    except KeyError:
        raise ValueError(
            f"unknown backend {backend!r}; available: {available_backends()}"
        ) from None
    return fn(model, **options)
