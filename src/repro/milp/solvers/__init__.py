"""Solver backends for :mod:`repro.milp` models."""

from repro.milp.solvers.registry import available_backends, solve, solve_many

__all__ = ["solve", "solve_many", "available_backends"]
