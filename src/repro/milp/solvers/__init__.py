"""Solver backends for :mod:`repro.milp` models."""

from repro.milp.solvers.registry import available_backends, solve

__all__ = ["solve", "available_backends"]
