"""Structured per-solve statistics.

Solver choice and instance structure interact unpredictably (strong
formulations, mixed-variable solvers, and racing portfolios all behave
differently per instance), so instead of guessing, every backend records a
:class:`SolveTelemetry` on its :class:`~repro.milp.solution.Solution`.  The
augmentation loop threads these records through the floorplan trace, and
``repro-floorplan telemetry`` / the CI benchmark jobs emit them as JSON so
perf regressions are machine-diffable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

#: The default non-overlap encoding (the paper's big-M formulation).  It is
#: the one every golden document was recorded under, so provenance treats it
#: as the unmarked case: None in memory, absent in serialized telemetry.
#: Mirrors the first entry of :data:`repro.core.config.FORMULATIONS` (the
#: config layer sits above this module, so the name is duplicated here).
DEFAULT_FORMULATION = "bigm"


@dataclass(frozen=True)
class IncumbentEvent:
    """One improvement of the incumbent during a solve."""

    seconds: float
    objective: float


@dataclass
class SolveTelemetry:
    """Machine-readable statistics of a single solve call.

    Attributes:
        backend: name of the backend that produced the solve
            (``"highs"``, ``"bnb[simplex]"``, ``"portfolio[highs]"``, ...).
        status: final :class:`~repro.milp.solution.SolveStatus` value.
        lp_calls: LP relaxations solved (1 for a pure LP; HiGHS does not
            report its internal count, so the MILP path records 0).
        nodes: branch-and-bound nodes explored.
        incumbents: incumbent improvements in solve order, each stamped
            with the wall-clock offset from solve start.
        gap: final relative optimality gap (0.0 when proven optimal,
            ``inf`` when no incumbent bounds it).
        wall_seconds: wall-clock time of the solve call.
        n_variables: columns of the standard form.
        n_integer: integral columns of the standard form.
        n_constraints: rows of the standard form.
        presolve: :meth:`repro.milp.presolve.PresolveReport.to_dict` output
            when presolve ran for this solve, else None.  ``n_variables`` /
            ``n_constraints`` describe the form the backend actually saw
            (the reduced one); the presolve dict records the originals.
        cache: solve-cache provenance when the solve went through the
            canonical solve cache (:mod:`repro.milp.cache`), else None:
            ``{"hit": bool, "tier": "memory"|"disk"|None, "key": <prefix>,
            "key_seconds": float, "recertified": bool}``.  On a hit the
            other fields (nodes, LP calls, incumbents) are those of the
            original stored solve.
        frontier: branch-and-bound frontier counters when the own solver
            ran — ``{"store": "arrays"|"objects", "peak_nodes": int,
            "rows_reclaimed": int, "lp_engine": str}`` — else None.  Purely
            diagnostic; stripped by canonicalization so scalar and
            vectorized runs stay byte-comparable.
        batch: batching provenance when the solve went through
            :func:`repro.milp.solvers.registry.solve_many` —
            ``{"size": int, "index": int}`` — else None.  Also stripped by
            canonicalization.
        formulation: non-overlap encoding that produced the model
            (:data:`repro.core.config.FORMULATIONS`) when the caller
            declared a non-default one, else None (None *means* the default
            :data:`DEFAULT_FORMULATION`).  Never serialized at the default
            and removed by canonicalization, so golden documents predating
            the axis stay byte-identical and round-trips are exact.
        outline: fixed die ``(width, height)`` when the solve ran under a
            fixed-outline cap, else None (None *means* the open-outline
            mode).  Omitted from serialization when None, so open-outline
            documents predating the axis stay byte-identical.
        eco: incremental-ECO provenance when the solve was a windowed
            re-floorplan subproblem (:func:`repro.core.eco.solve_eco`) —
            ``{"window": int, "frozen": int}`` — else None (None *means*
            a non-ECO solve).  Omitted from serialization when None, so
            documents predating the ECO axis stay byte-identical.
    """

    backend: str = ""
    status: str = ""
    lp_calls: int = 0
    nodes: int = 0
    incumbents: list[IncumbentEvent] = field(default_factory=list)
    gap: float = 0.0
    wall_seconds: float = 0.0
    n_variables: int = 0
    n_integer: int = 0
    n_constraints: int = 0
    presolve: dict[str, Any] | None = None
    cache: dict[str, Any] | None = None
    frontier: dict[str, Any] | None = None
    batch: dict[str, Any] | None = None
    formulation: str | None = None
    outline: tuple[float, float] | None = None
    eco: dict[str, Any] | None = None

    def record_incumbent(self, seconds: float, objective: float) -> None:
        """Append one incumbent improvement."""
        self.incumbents.append(IncumbentEvent(seconds, objective))

    def to_dict(self) -> dict[str, Any]:
        """A JSON-safe representation (``inf`` gaps become ``None``)."""
        import math

        out = {
            "backend": self.backend,
            "status": self.status,
            "lp_calls": self.lp_calls,
            "nodes": self.nodes,
            "incumbents": [[e.seconds, e.objective] for e in self.incumbents],
            "gap": None if not math.isfinite(self.gap) else self.gap,
            "wall_seconds": self.wall_seconds,
            "n_variables": self.n_variables,
            "n_integer": self.n_integer,
            "n_constraints": self.n_constraints,
            "presolve": self.presolve,
            "cache": self.cache,
            "frontier": self.frontier,
            "batch": self.batch,
        }
        # Omitted when absent or at the default encoding, so serialized
        # documents recorded before the formulation axis existed stay
        # byte-identical (same discipline as the config serializer).
        if (self.formulation is not None
                and self.formulation != DEFAULT_FORMULATION):
            out["formulation"] = self.formulation
        if self.outline is not None:
            out["outline"] = [self.outline[0], self.outline[1]]
        if self.eco is not None:
            out["eco"] = self.eco
        return out

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "SolveTelemetry":
        """Rebuild a record from :meth:`to_dict` output."""
        gap = data.get("gap")
        return cls(
            backend=data.get("backend", ""),
            status=data.get("status", ""),
            lp_calls=data.get("lp_calls", 0),
            nodes=data.get("nodes", 0),
            incumbents=[IncumbentEvent(float(s), float(obj))
                        for s, obj in data.get("incumbents", [])],
            gap=float("inf") if gap is None else float(gap),
            wall_seconds=data.get("wall_seconds", 0.0),
            n_variables=data.get("n_variables", 0),
            n_integer=data.get("n_integer", 0),
            n_constraints=data.get("n_constraints", 0),
            presolve=data.get("presolve"),
            cache=data.get("cache"),
            frontier=data.get("frontier"),
            batch=data.get("batch"),
            formulation=data.get("formulation"),
            outline=(tuple(float(v) for v in data["outline"])
                     if data.get("outline") is not None else None),
            eco=data.get("eco"),
        )
