"""CPLEX-LP-format export/import for models.

LINDO-era workflows moved models between tools as text files; this module
provides the modern equivalent: serialize a :class:`~repro.milp.model.Model`
to the widely supported LP file format (objective, SUBJECT TO, BOUNDS,
BINARY/GENERAL sections) and parse it back.  Useful for debugging a
floorplanning subproblem in any external solver, and round-trip-tested.
"""

from __future__ import annotations

import math
import re

from repro.milp.expr import LinExpr, Variable, VarKind, lin_sum
from repro.milp.model import Model, ObjectiveSense, Sense

_NAME_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_.]*")


def _sanitize(name: str) -> str:
    """LP format forbids brackets/commas that our variable names use."""
    return re.sub(r"[^A-Za-z0-9_.]", "_", name)


def _term_text(coeff: float, name: str, first: bool) -> str:
    sign = "-" if coeff < 0 else ("" if first else "+")
    magnitude = abs(coeff)
    if magnitude == 1.0:
        body = name
    else:
        body = f"{magnitude:.12g} {name}"
    return f"{sign} {body}".strip() if not first or sign else f"{sign}{body}"


def _expr_text(expr: LinExpr, names: dict[Variable, str]) -> str:
    parts: list[str] = []
    for var, coeff in sorted(expr.terms.items(), key=lambda kv: kv[0].index):
        if coeff == 0.0:
            continue
        parts.append(_term_text(coeff, names[var], first=not parts))
    if not parts:
        parts.append("0 " + next(iter(names.values()), "x0"))
    return " ".join(parts)


def write_lp(model: Model) -> str:
    """Serialize ``model`` to LP-format text.

    Variable names are sanitized (``x[m00]`` becomes ``x_m00_``); the mapping
    is deterministic, so :func:`read_lp` round-trips structure and solution
    values (names may differ from the original model's).
    """
    names: dict[Variable, str] = {}
    used: set[str] = set()
    for var in model.variables:
        base = _sanitize(var.name) or f"v{var.index}"
        candidate = base
        k = 1
        while candidate in used:
            candidate = f"{base}_{k}"
            k += 1
        used.add(candidate)
        names[var] = candidate

    lines: list[str] = []
    sense = "Maximize" if model.objective_sense is ObjectiveSense.MAX \
        else "Minimize"
    lines.append(sense)
    objective = model.objective.simplified()
    lines.append(f" obj: {_expr_text(objective, names)}")
    lines.append("Subject To")
    for i, con in enumerate(model.constraints):
        expr = con.expr.simplified()
        rhs = -expr.constant
        body = _expr_text(LinExpr(expr.terms), names)
        op = {"<=": "<=", ">=": ">=", "==": "="}[con.sense.value]
        lines.append(f" c{i}: {body} {op} {rhs:.12g}")

    lines.append("Bounds")
    for var in model.variables:
        name = names[var]
        lb = var.lb
        ub = var.ub
        if var.kind is VarKind.BINARY:
            continue  # binary section implies [0, 1]
        if math.isinf(ub) and lb == 0.0:
            continue  # LP default
        if math.isinf(ub):
            lines.append(f" {name} >= {lb:.12g}")
        else:
            lines.append(f" {lb:.12g} <= {name} <= {ub:.12g}")

    binaries = [names[v] for v in model.variables if v.kind is VarKind.BINARY]
    if binaries:
        lines.append("Binary")
        lines.extend(f" {b}" for b in binaries)
    generals = [names[v] for v in model.variables if v.kind is VarKind.INTEGER]
    if generals:
        lines.append("General")
        lines.extend(f" {g}" for g in generals)
    lines.append("End")
    return "\n".join(lines) + "\n"


class LpParseError(ValueError):
    """Raised on malformed LP text."""


def read_lp(text: str) -> Model:
    """Parse LP-format text into a :class:`~repro.milp.model.Model`.

    Supports the subset :func:`write_lp` emits (which covers every model
    this library builds): a single objective, ``Subject To`` rows with
    ``<= >= =``, a ``Bounds`` section, ``Binary``/``General`` sections.
    """
    section = None
    objective_sense = ObjectiveSense.MIN
    objective_tokens: list[str] = []
    constraint_rows: list[tuple[str, str, float]] = []
    bounds: dict[str, tuple[float, float]] = {}
    binaries: set[str] = set()
    generals: set[str] = set()

    for raw in text.splitlines():
        line = raw.split("\\")[0].strip()
        if not line:
            continue
        lowered = line.lower()
        if lowered in ("minimize", "minimise", "min"):
            section, objective_sense = "objective", ObjectiveSense.MIN
            continue
        if lowered in ("maximize", "maximise", "max"):
            section, objective_sense = "objective", ObjectiveSense.MAX
            continue
        if lowered in ("subject to", "st", "s.t."):
            section = "constraints"
            continue
        if lowered == "bounds":
            section = "bounds"
            continue
        if lowered in ("binary", "binaries", "bin"):
            section = "binary"
            continue
        if lowered in ("general", "generals", "gen"):
            section = "general"
            continue
        if lowered == "end":
            break

        if section == "objective":
            objective_tokens.append(line.split(":", 1)[-1])
        elif section == "constraints":
            body = line.split(":", 1)[-1].strip()
            match = re.search(r"(<=|>=|=)", body)
            if not match:
                raise LpParseError(f"constraint without comparator: {line!r}")
            op = match.group(1)
            lhs, rhs = body.split(op, 1)
            constraint_rows.append((lhs.strip(), op, float(rhs)))
        elif section == "bounds":
            two_sided = re.match(
                r"([-+0-9.eE]+)\s*<=\s*(\w[\w.]*)\s*<=\s*([-+0-9.eE]+)", line)
            one_sided = re.match(r"(\w[\w.]*)\s*>=\s*([-+0-9.eE]+)", line)
            if two_sided:
                bounds[two_sided.group(2)] = (float(two_sided.group(1)),
                                              float(two_sided.group(3)))
            elif one_sided:
                bounds[one_sided.group(1)] = (float(one_sided.group(2)),
                                              math.inf)
            else:
                raise LpParseError(f"unsupported bounds row: {line!r}")
        elif section == "binary":
            binaries.update(_NAME_RE.findall(line))
        elif section == "general":
            generals.update(_NAME_RE.findall(line))

    # Collect variable names from objective + constraints in reading order.
    expr_texts = [" ".join(objective_tokens)] + [c[0] for c in constraint_rows]
    order: list[str] = []
    seen: set[str] = set()
    for body in expr_texts:
        for token in _NAME_RE.findall(body):
            if token not in seen:
                seen.add(token)
                order.append(token)
    for extra in sorted(binaries | generals | set(bounds)):
        if extra not in seen:
            seen.add(extra)
            order.append(extra)

    model = Model("lp_import")
    by_name: dict[str, Variable] = {}
    for name in order:
        if name in binaries:
            by_name[name] = model.add_binary(name)
        else:
            lb, ub = bounds.get(name, (0.0, math.inf))
            kind = VarKind.INTEGER if name in generals else VarKind.CONTINUOUS
            by_name[name] = model.add_var(name, lb=lb, ub=ub, kind=kind)

    def parse_expr(body: str) -> LinExpr:
        # numbers (including scientific notation with signed exponents)
        # must be matched before bare +/- signs
        tokens = re.findall(
            r"\d+\.?\d*(?:[eE][-+]?\d+)?|\.\d+(?:[eE][-+]?\d+)?"
            r"|[A-Za-z_][\w.]*|[-+]", body)
        terms: list[LinExpr] = []
        sign = 1.0
        coeff: float | None = None
        for token in tokens:
            if token == "+":
                sign, coeff = 1.0, None
            elif token == "-":
                sign, coeff = -1.0, None
            elif _NAME_RE.fullmatch(token) and token in by_name:
                value = sign * (coeff if coeff is not None else 1.0)
                terms.append(value * by_name[token])
                sign, coeff = 1.0, None
            else:
                coeff = float(token)
        if coeff is not None:
            terms.append(LinExpr({}, sign * coeff))
        return lin_sum(terms)

    model.set_objective(parse_expr(" ".join(objective_tokens)),
                        objective_sense)
    for lhs, op, rhs in constraint_rows:
        expr = parse_expr(lhs)
        if op == "<=":
            model.add_constraint(expr <= rhs)
        elif op == ">=":
            model.add_constraint(expr >= rhs)
        else:
            model.add_constraint(expr == rhs)
    return model
