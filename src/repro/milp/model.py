"""The optimization model: variables, constraints, objective, export.

A :class:`Model` collects variables and constraints built with the algebra of
:mod:`repro.milp.expr` and exports them to the standard-form arrays the
backends consume (objective vector, sparse constraint matrix with row bounds,
variable bounds, integrality markers).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from enum import Enum
from typing import Iterable, Mapping

import numpy as np
from scipy import sparse

from repro.milp.expr import ExprLike, LinExpr, Variable, VarKind, _as_expr


class Sense(str, Enum):
    """Constraint sense; constraints are stored as ``expr SENSE 0``."""

    LE = "<="
    GE = ">="
    EQ = "=="


class ObjectiveSense(str, Enum):
    """Optimization direction."""

    MIN = "min"
    MAX = "max"


@dataclass
class Constraint:
    """A linear constraint ``expr <= 0``, ``expr >= 0``, or ``expr == 0``.

    Built by comparing expressions (``lhs <= rhs`` stores ``lhs - rhs`` with
    sense LE).  The name is attached when added to a model.
    """

    expr: LinExpr
    sense: Sense
    name: str = ""

    def violation(self, assignment: Mapping[Variable, float]) -> float:
        """How much the constraint is violated under ``assignment``
        (0.0 when satisfied)."""
        value = self.expr.value(assignment)
        if self.sense is Sense.LE:
            return max(0.0, value)
        if self.sense is Sense.GE:
            return max(0.0, -value)
        return abs(value)

    def __repr__(self) -> str:
        return f"Constraint({self.name or '?'}: {self.expr!r} {self.sense.value} 0)"


@dataclass(frozen=True)
class StandardForm:
    """Arrays for the backends.

    minimize ``c @ x + c0`` subject to ``row_lb <= A @ x <= row_ub`` and
    ``lb <= x <= ub``; ``integrality[j]`` is 1 for integral columns else 0.
    """

    c: np.ndarray
    c0: float
    a_matrix: sparse.csr_matrix
    row_lb: np.ndarray
    row_ub: np.ndarray
    lb: np.ndarray
    ub: np.ndarray
    integrality: np.ndarray
    variables: tuple[Variable, ...]
    maximize: bool


class Model:
    """A mixed-integer linear program under construction."""

    def __init__(self, name: str = "model") -> None:
        self.name = name
        self._variables: list[Variable] = []
        self._constraints: list[Constraint] = []
        self._objective: LinExpr = LinExpr()
        self._objective_sense = ObjectiveSense.MIN

    # -- building -------------------------------------------------------------

    def add_var(self, name: str, lb: float = 0.0, ub: float = math.inf,
                kind: VarKind = VarKind.CONTINUOUS) -> Variable:
        """Create a variable and register it with the model.

        Binary variables get bounds clamped to [0, 1] regardless of the
        arguments.
        """
        if kind is VarKind.BINARY:
            lb, ub = max(0.0, lb), min(1.0, ub)
        if ub < lb:
            raise ValueError(f"variable {name}: ub {ub} < lb {lb}")
        var = Variable(name, len(self._variables), lb, ub, kind)
        self._variables.append(var)
        return var

    def add_binary(self, name: str) -> Variable:
        """Shorthand for a 0-1 variable."""
        return self.add_var(name, 0.0, 1.0, VarKind.BINARY)

    def add_continuous(self, name: str, lb: float = 0.0,
                       ub: float = math.inf) -> Variable:
        """Shorthand for a continuous variable."""
        return self.add_var(name, lb, ub, VarKind.CONTINUOUS)

    def add_constraint(self, constraint: Constraint, name: str = "") -> Constraint:
        """Register a constraint (built via expression comparison)."""
        if not isinstance(constraint, Constraint):
            raise TypeError(
                "add_constraint expects a Constraint; build one by comparing "
                "expressions, e.g. model.add_constraint(x + y <= 3)"
            )
        for var in constraint.expr.terms:
            if var.index >= len(self._variables) or self._variables[var.index] is not var:
                raise ValueError(
                    f"constraint {name or constraint.name!r} uses variable "
                    f"{var.name!r} not owned by this model"
                )
        constraint.name = name or constraint.name or f"c{len(self._constraints)}"
        self._constraints.append(constraint)
        return constraint

    def add_constraints(self, constraints: Iterable[Constraint],
                        prefix: str = "") -> list[Constraint]:
        """Register several constraints, naming them ``prefix0, prefix1, ...``."""
        added = []
        for i, con in enumerate(constraints):
            added.append(self.add_constraint(con, name=f"{prefix}{i}" if prefix else ""))
        return added

    def set_objective(self, expr: ExprLike,
                      sense: ObjectiveSense | str = ObjectiveSense.MIN) -> None:
        """Set the objective expression and direction."""
        self._objective = _as_expr(expr)
        self._objective_sense = ObjectiveSense(sense)

    # -- introspection ------------------------------------------------------------

    @property
    def variables(self) -> tuple[Variable, ...]:
        """All variables in column order."""
        return tuple(self._variables)

    @property
    def constraints(self) -> tuple[Constraint, ...]:
        """All constraints in row order."""
        return tuple(self._constraints)

    @property
    def objective(self) -> LinExpr:
        """The objective expression."""
        return self._objective

    @property
    def objective_sense(self) -> ObjectiveSense:
        """The optimization direction."""
        return self._objective_sense

    @property
    def n_variables(self) -> int:
        """Number of variables."""
        return len(self._variables)

    @property
    def n_integer_variables(self) -> int:
        """Number of binary/integer variables — the quantity the paper's
        successive augmentation keeps near-constant per step."""
        return sum(1 for v in self._variables if v.is_integral)

    @property
    def n_constraints(self) -> int:
        """Number of constraints."""
        return len(self._constraints)

    def is_pure_lp(self) -> bool:
        """True when the model has no integral variables (the section-2.5
        given-topology case)."""
        return self.n_integer_variables == 0

    # -- validation and export ------------------------------------------------------

    def check_assignment(self, assignment: Mapping[Variable, float],
                         tol: float = 1e-6) -> list[Constraint]:
        """Constraints violated by more than ``tol`` under ``assignment``."""
        return [c for c in self._constraints if c.violation(assignment) > tol]

    def to_standard_form(self) -> StandardForm:
        """Export to the array form the solver backends consume."""
        n = len(self._variables)
        c = np.zeros(n)
        for var, coeff in self._objective.terms.items():
            c[var.index] += coeff
        maximize = self._objective_sense is ObjectiveSense.MAX
        if maximize:
            c = -c

        rows: list[int] = []
        cols: list[int] = []
        data: list[float] = []
        row_lb = np.empty(len(self._constraints))
        row_ub = np.empty(len(self._constraints))
        for i, con in enumerate(self._constraints):
            for var, coeff in con.expr.terms.items():
                if coeff != 0.0:
                    rows.append(i)
                    cols.append(var.index)
                    data.append(coeff)
            rhs = -con.expr.constant
            if con.sense is Sense.LE:
                row_lb[i], row_ub[i] = -np.inf, rhs
            elif con.sense is Sense.GE:
                row_lb[i], row_ub[i] = rhs, np.inf
            else:
                row_lb[i], row_ub[i] = rhs, rhs

        a_matrix = sparse.csr_matrix(
            (data, (rows, cols)), shape=(len(self._constraints), n))
        lb = np.array([v.lb for v in self._variables])
        ub = np.array([v.ub for v in self._variables])
        integrality = np.array(
            [1 if v.is_integral else 0 for v in self._variables])
        c0 = self._objective.constant * (-1.0 if maximize else 1.0)
        return StandardForm(c=c, c0=c0, a_matrix=a_matrix, row_lb=row_lb,
                            row_ub=row_ub, lb=lb, ub=ub,
                            integrality=integrality,
                            variables=tuple(self._variables),
                            maximize=maximize)

    def __repr__(self) -> str:
        return (f"Model({self.name!r}: {self.n_variables} vars "
                f"({self.n_integer_variables} integer), "
                f"{self.n_constraints} constraints)")
