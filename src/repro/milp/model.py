"""The optimization model: variables, constraints, objective, export.

A :class:`Model` collects variables and constraints built with the algebra of
:mod:`repro.milp.expr` and exports them to the standard-form arrays the
backends consume (objective vector, sparse constraint matrix with row bounds,
variable bounds, integrality markers).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from enum import Enum
from typing import Iterable, Mapping, Sequence

import numpy as np
from scipy import sparse

from repro.milp.expr import ExprLike, LinExpr, Variable, VarKind, _as_expr


class Sense(str, Enum):
    """Constraint sense; constraints are stored as ``expr SENSE 0``."""

    LE = "<="
    GE = ">="
    EQ = "=="


class ObjectiveSense(str, Enum):
    """Optimization direction."""

    MIN = "min"
    MAX = "max"


@dataclass
class Constraint:
    """A linear constraint ``expr <= 0``, ``expr >= 0``, or ``expr == 0``.

    Built by comparing expressions (``lhs <= rhs`` stores ``lhs - rhs`` with
    sense LE).  The name is attached when added to a model.
    """

    expr: LinExpr
    sense: Sense
    name: str = ""

    def violation(self, assignment: Mapping[Variable, float]) -> float:
        """How much the constraint is violated under ``assignment``
        (0.0 when satisfied)."""
        value = self.expr.value(assignment)
        if self.sense is Sense.LE:
            return max(0.0, value)
        if self.sense is Sense.GE:
            return max(0.0, -value)
        return abs(value)

    def __repr__(self) -> str:
        return f"Constraint({self.name or '?'}: {self.expr!r} {self.sense.value} 0)"


@dataclass
class _RowBlock:
    """A block of same-sense rows over a shared column set, stored as
    pre-assembled COO triplets.

    The block-building path skips the per-row :class:`LinExpr` dict algebra
    entirely: callers hand over a dense coefficient matrix and the block
    keeps only the nonzero triplets plus the row-bound arrays the standard
    form needs.  Equivalent :class:`Constraint` objects are materialized
    lazily, only for consumers that want them (serialization, violation
    reporting).
    """

    cols: np.ndarray      # global column indices, one per nonzero
    rows: np.ndarray      # local row ids, one per nonzero (row-major order)
    data: np.ndarray      # coefficients, one per nonzero
    row_lb: np.ndarray    # (k,) lower row bounds
    row_ub: np.ndarray    # (k,) upper row bounds
    senses: list["Sense"]
    names: list[str]
    variables: list["Variable"]   # the shared column set (for materialization)
    col_local: np.ndarray         # local column index per nonzero

    @property
    def n_rows(self) -> int:
        return len(self.names)

    def materialize(self) -> list["Constraint"]:
        """Equivalent per-row :class:`Constraint` objects."""
        split = np.searchsorted(self.rows, np.arange(1, self.n_rows))
        out: list[Constraint] = []
        for r, (lo, hi) in enumerate(
                zip(np.concatenate([[0], split]),
                    np.concatenate([split, [len(self.rows)]]))):
            sense = self.senses[r]
            rhs = self.row_lb[r] if sense is Sense.GE else self.row_ub[r]
            terms = {self.variables[int(j)]: float(c)
                     for j, c in zip(self.col_local[lo:hi], self.data[lo:hi])}
            out.append(Constraint(LinExpr(terms, -float(rhs)),
                                  sense, self.names[r]))
        return out


@dataclass(frozen=True)
class StandardForm:
    """Arrays for the backends.

    minimize ``c @ x + c0`` subject to ``row_lb <= A @ x <= row_ub`` and
    ``lb <= x <= ub``; ``integrality[j]`` is 1 for integral columns else 0.
    """

    c: np.ndarray
    c0: float
    a_matrix: sparse.csr_matrix
    row_lb: np.ndarray
    row_ub: np.ndarray
    lb: np.ndarray
    ub: np.ndarray
    integrality: np.ndarray
    variables: tuple[Variable, ...]
    maximize: bool


class Model:
    """A mixed-integer linear program under construction."""

    def __init__(self, name: str = "model") -> None:
        self.name = name
        self._variables: list[Variable] = []
        # Rows in insertion order: scalar Constraints interleaved with
        # _RowBlocks.  Flat Constraint views and the assembled row arrays
        # are cached and invalidated by any structural change.
        self._items: list[Constraint | _RowBlock] = []
        self._n_rows = 0
        self._constraints_cache: tuple[Constraint, ...] | None = None
        self._rows_cache: tuple[sparse.csr_matrix, np.ndarray, np.ndarray] | None = None
        self._objective: LinExpr = LinExpr()
        self._objective_sense = ObjectiveSense.MIN

    def _invalidate(self) -> None:
        self._constraints_cache = None
        self._rows_cache = None

    # -- building -------------------------------------------------------------

    def add_var(self, name: str, lb: float = 0.0, ub: float = math.inf,
                kind: VarKind = VarKind.CONTINUOUS) -> Variable:
        """Create a variable and register it with the model.

        Binary variables get bounds clamped to [0, 1] regardless of the
        arguments.
        """
        if kind is VarKind.BINARY:
            lb, ub = max(0.0, lb), min(1.0, ub)
        if ub < lb:
            raise ValueError(f"variable {name}: ub {ub} < lb {lb}")
        var = Variable(name, len(self._variables), lb, ub, kind)
        self._variables.append(var)
        # The assembled matrix is (n_rows, n_vars): a new column changes it.
        self._rows_cache = None
        return var

    def add_binary(self, name: str) -> Variable:
        """Shorthand for a 0-1 variable."""
        return self.add_var(name, 0.0, 1.0, VarKind.BINARY)

    def add_continuous(self, name: str, lb: float = 0.0,
                       ub: float = math.inf) -> Variable:
        """Shorthand for a continuous variable."""
        return self.add_var(name, lb, ub, VarKind.CONTINUOUS)

    def add_constraint(self, constraint: Constraint, name: str = "") -> Constraint:
        """Register a constraint (built via expression comparison)."""
        if not isinstance(constraint, Constraint):
            raise TypeError(
                "add_constraint expects a Constraint; build one by comparing "
                "expressions, e.g. model.add_constraint(x + y <= 3)"
            )
        for var in constraint.expr.terms:
            if var.index >= len(self._variables) or self._variables[var.index] is not var:
                raise ValueError(
                    f"constraint {name or constraint.name!r} uses variable "
                    f"{var.name!r} not owned by this model"
                )
        constraint.name = name or constraint.name or f"c{self._n_rows}"
        self._items.append(constraint)
        self._n_rows += 1
        self._invalidate()
        return constraint

    def add_constraints(self, constraints: Iterable[Constraint],
                        prefix: str = "") -> list[Constraint]:
        """Register several constraints, naming them ``prefix0, prefix1, ...``."""
        added = []
        for i, con in enumerate(constraints):
            added.append(self.add_constraint(con, name=f"{prefix}{i}" if prefix else ""))
        return added

    def add_rows(self, columns: Sequence[Variable], coeffs,
                 sense, rhs, names: Sequence[str]) -> None:
        """Add a block of rows over a shared column set.

        The vectorized alternative to repeated :meth:`add_constraint`: the
        rows enter the model as pre-assembled coefficient triplets, so no
        per-row :class:`~repro.milp.expr.LinExpr` dictionaries are built and
        :meth:`to_standard_form` concatenates the block into the CSR matrix
        without touching individual rows.  Rows read
        ``coeffs[r] @ columns  SENSE  rhs[r]``.

        Args:
            columns: the variables the block touches (no duplicates).
            coeffs: array-like of shape ``(k, len(columns))``; zeros are
                dropped, exactly like the scalar export path drops them.
            sense: one :class:`Sense` (or string) for the whole block, or a
                sequence of ``k`` per-row senses.
            rhs: array-like of ``k`` right-hand sides.
            names: one name per row.
        """
        columns = list(columns)
        coeffs = np.asarray(coeffs, dtype=float)
        rhs = np.asarray(rhs, dtype=float)
        if isinstance(sense, (Sense, str)):
            senses = [Sense(sense)] * len(rhs)
        else:
            senses = [Sense(s) for s in sense]
        if coeffs.ndim != 2 or coeffs.shape != (len(rhs), len(columns)):
            raise ValueError(
                f"coeffs shape {coeffs.shape} does not match "
                f"({len(rhs)} rows, {len(columns)} columns)")
        if len(names) != len(rhs) or len(senses) != len(rhs):
            raise ValueError(
                f"{len(names)} names / {len(senses)} senses for "
                f"{len(rhs)} rows")
        seen: set[int] = set()
        for var in columns:
            if var.index >= len(self._variables) \
                    or self._variables[var.index] is not var:
                raise ValueError(
                    f"row block uses variable {var.name!r} not owned by "
                    f"this model")
            if id(var) in seen:
                raise ValueError(f"duplicate column {var.name!r} in row block")
            seen.add(id(var))
        local_rows, local_cols = np.nonzero(coeffs)
        col_index = np.array([v.index for v in columns], dtype=np.int64)
        le = np.array([s is not Sense.GE for s in senses])
        ge = np.array([s is not Sense.LE for s in senses])
        row_lb = np.where(ge, rhs, -np.inf)
        row_ub = np.where(le, rhs, np.inf)
        self._items.append(_RowBlock(
            cols=col_index[local_cols], rows=local_rows,
            data=coeffs[local_rows, local_cols], row_lb=row_lb,
            row_ub=row_ub, senses=senses, names=list(names),
            variables=columns, col_local=local_cols))
        self._n_rows += len(rhs)
        self._invalidate()

    def set_objective(self, expr: ExprLike,
                      sense: ObjectiveSense | str = ObjectiveSense.MIN) -> None:
        """Set the objective expression and direction."""
        self._objective = _as_expr(expr)
        self._objective_sense = ObjectiveSense(sense)

    # -- introspection ------------------------------------------------------------

    @property
    def variables(self) -> tuple[Variable, ...]:
        """All variables in column order."""
        return tuple(self._variables)

    @property
    def constraints(self) -> tuple[Constraint, ...]:
        """All constraints in row order (block rows materialized lazily)."""
        if self._constraints_cache is None:
            flat: list[Constraint] = []
            for item in self._items:
                if isinstance(item, _RowBlock):
                    flat.extend(item.materialize())
                else:
                    flat.append(item)
            self._constraints_cache = tuple(flat)
        return self._constraints_cache

    @property
    def objective(self) -> LinExpr:
        """The objective expression."""
        return self._objective

    @property
    def objective_sense(self) -> ObjectiveSense:
        """The optimization direction."""
        return self._objective_sense

    @property
    def n_variables(self) -> int:
        """Number of variables."""
        return len(self._variables)

    @property
    def n_integer_variables(self) -> int:
        """Number of binary/integer variables — the quantity the paper's
        successive augmentation keeps near-constant per step."""
        return sum(1 for v in self._variables if v.is_integral)

    @property
    def n_constraints(self) -> int:
        """Number of constraints."""
        return self._n_rows

    def is_pure_lp(self) -> bool:
        """True when the model has no integral variables (the section-2.5
        given-topology case)."""
        return self.n_integer_variables == 0

    # -- validation and export ------------------------------------------------------

    def check_assignment(self, assignment: Mapping[Variable, float],
                         tol: float = 1e-6) -> list[Constraint]:
        """Constraints violated by more than ``tol`` under ``assignment``.

        Complete assignments are checked in one sparse matrix-vector product
        against the cached row arrays; constraint objects are materialized
        only for the violated rows.  Assignments that do not cover every
        variable fall back to the per-constraint scalar path.
        """
        try:
            x = np.array([assignment[v] for v in self._variables], dtype=float)
        except KeyError:
            return [c for c in self.constraints if c.violation(assignment) > tol]
        a_matrix, row_lb, row_ub = self._assembled_rows()
        activity = a_matrix @ x
        bad = (activity > row_ub + tol) | (activity < row_lb - tol)
        if not bad.any():
            return []
        constraints = self.constraints
        return [constraints[i] for i in np.flatnonzero(bad)]

    def _assembled_rows(self) -> tuple[sparse.csr_matrix, np.ndarray, np.ndarray]:
        """The constraint system as ``(A, row_lb, row_ub)``, cached.

        Scalar constraints contribute their expression terms; row blocks
        splice their pre-built COO triplets in directly — no per-row work.
        """
        if self._rows_cache is not None:
            return self._rows_cache
        n = len(self._variables)
        row_parts: list[np.ndarray] = []
        col_parts: list[np.ndarray] = []
        data_parts: list[np.ndarray] = []
        row_lb = np.empty(self._n_rows)
        row_ub = np.empty(self._n_rows)
        offset = 0
        for item in self._items:
            if isinstance(item, _RowBlock):
                k = item.n_rows
                row_parts.append(item.rows + offset)
                col_parts.append(item.cols)
                data_parts.append(item.data)
                row_lb[offset:offset + k] = item.row_lb
                row_ub[offset:offset + k] = item.row_ub
                offset += k
                continue
            con = item
            nz = [(var.index, coeff) for var, coeff in con.expr.terms.items()
                  if coeff != 0.0]
            if nz:
                row_parts.append(np.full(len(nz), offset, dtype=np.int64))
                col_parts.append(np.array([j for j, _ in nz], dtype=np.int64))
                data_parts.append(np.array([c for _, c in nz]))
            rhs = -con.expr.constant
            if con.sense is Sense.LE:
                row_lb[offset], row_ub[offset] = -np.inf, rhs
            elif con.sense is Sense.GE:
                row_lb[offset], row_ub[offset] = rhs, np.inf
            else:
                row_lb[offset], row_ub[offset] = rhs, rhs
            offset += 1
        if row_parts:
            coo = (np.concatenate(data_parts),
                   (np.concatenate(row_parts), np.concatenate(col_parts)))
            a_matrix = sparse.csr_matrix(coo, shape=(self._n_rows, n))
        else:
            a_matrix = sparse.csr_matrix((self._n_rows, n))
        self._rows_cache = (a_matrix, row_lb, row_ub)
        return self._rows_cache

    def to_standard_form(self) -> StandardForm:
        """Export to the array form the solver backends consume.

        The constraint matrix and row bounds are cached across calls (they
        only change when rows or columns are added); the objective vector
        and variable bound arrays are rebuilt every call, because variable
        bounds are mutated in place after construction (dominance fixings,
        presolve tightenings).
        """
        n = len(self._variables)
        c = np.zeros(n)
        for var, coeff in self._objective.terms.items():
            c[var.index] += coeff
        maximize = self._objective_sense is ObjectiveSense.MAX
        if maximize:
            c = -c
        a_matrix, row_lb, row_ub = self._assembled_rows()
        lb = np.array([v.lb for v in self._variables])
        ub = np.array([v.ub for v in self._variables])
        integrality = np.array(
            [1 if v.is_integral else 0 for v in self._variables])
        c0 = self._objective.constant * (-1.0 if maximize else 1.0)
        return StandardForm(c=c, c0=c0, a_matrix=a_matrix, row_lb=row_lb,
                            row_ub=row_ub, lb=lb, ub=ub,
                            integrality=integrality,
                            variables=tuple(self._variables),
                            maximize=maximize)

    def __repr__(self) -> str:
        return (f"Model({self.name!r}: {self.n_variables} vars "
                f"({self.n_integer_variables} integer), "
                f"{self.n_constraints} constraints)")
