"""Solver-independent MILP presolve over :class:`StandardForm`.

The paper's eq. (2) non-overlap disjunctions are the textbook case of a weak
big-M formulation: Huchette, Dey & Vielma show floor-layout MILPs tighten
dramatically under standard reductions, and the SMT floorplanners (Banerjee
et al.) win by pruning relative-position disjunctions before search.  This
module applies the generic share of those reductions to *any* standard form,
so every backend (HiGHS, the from-scratch branch-and-bound, the NumPy
simplex, the racing portfolio) benefits identically:

* **bound propagation** — worklist-driven activity propagation tightens
  variable boxes (e.g. ``x_i + w_i <= W`` turns ``ub(x_i) = W`` into
  ``W - w_i``), with integral rounding for integer columns;
* **big-M / coefficient tightening** — Savelsbergh's rules shrink binary
  coefficients in one-sided ``<=`` rows down to what the propagated bounds
  support; combined with an objective cutoff this replaces the formulation's
  global vertical big-M by per-pair values;
* **objective cutoff** — a feasible incumbent's value ``z`` (from the
  cross-step warm start) adds the valid row ``c @ x <= z``; propagating it
  pulls the chip-height bound down and cascades into every big-M row;
* **binary fixing** — propagation plus integral rounding fixes dominated
  binaries (a relative-position branch that no box point can realize);
* **fixed-column elimination** — columns with ``lb == ub`` are substituted
  into the rows and the objective constant and dropped;
* **redundant-row removal** — rows satisfied by every point of the
  (tightened) box are dropped, with a *strict* no-tolerance test so a row
  is never mis-dropped;
* **symmetry breaking** — caller-supplied groups of interchangeable columns
  (identical window modules) get ``x_a <= x_b`` ordering rows.

Every reduction preserves the feasible set exactly — except the objective
cutoff and symmetry rows, which preserve at least one optimal point — so the
optimal objective is invariant and presolve-on/off parity is testable.  The
:class:`PresolveResult` carries the presolve→postsolve mapping: reduced-space
solutions are completed with the fixed columns so certification still runs
against the *original* standard form.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence

import numpy as np
from scipy import sparse

from repro.milp.expr import Variable
from repro.milp.model import StandardForm
from repro.milp.solution import Solution

#: Slack added beyond every propagated continuous bound so float noise can
#: never cut off a feasible vertex.
BOUND_PAD = 1e-9
#: Rounding tolerance when snapping propagated integer bounds.
INT_PAD = 1e-6
#: Scaled violation beyond which presolve declares infeasibility.
INFEAS_TOL = 1e-7
#: Minimum scaled improvement for a tightened bound to be accepted (keeps
#: the worklist from churning on noise-level "wins").
MIN_GAIN = 1e-9
#: Minimum scaled improvement for a coefficient tightening.
COEF_GAIN = 1e-7


@dataclass
class PresolveReport:
    """What one presolve pass did to a standard form.

    Threaded into :class:`~repro.milp.telemetry.SolveTelemetry` (as a dict)
    so the per-step artifacts record rows/columns removed, binaries fixed,
    and big-M shrinkage next to the solve statistics.
    """

    rows_before: int = 0
    rows_after: int = 0
    cols_before: int = 0
    cols_after: int = 0
    ints_before: int = 0
    ints_after: int = 0
    rows_removed: int = 0
    cols_fixed: int = 0
    binaries_fixed: int = 0
    bounds_tightened: int = 0
    coeffs_tightened: int = 0
    m_shrink_total: float = 0.0
    m_shrink_max: float = 0.0
    symmetry_rows: int = 0
    objective_cutoff: float | None = None
    infeasible: bool = False

    def to_dict(self) -> dict[str, Any]:
        """A JSON-safe representation."""
        return {
            "rows_before": self.rows_before,
            "rows_after": self.rows_after,
            "cols_before": self.cols_before,
            "cols_after": self.cols_after,
            "ints_before": self.ints_before,
            "ints_after": self.ints_after,
            "rows_removed": self.rows_removed,
            "cols_fixed": self.cols_fixed,
            "binaries_fixed": self.binaries_fixed,
            "bounds_tightened": self.bounds_tightened,
            "coeffs_tightened": self.coeffs_tightened,
            "m_shrink_total": self.m_shrink_total,
            "m_shrink_max": self.m_shrink_max,
            "symmetry_rows": self.symmetry_rows,
            "objective_cutoff": self.objective_cutoff,
            "infeasible": self.infeasible,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "PresolveReport":
        """Rebuild a report from :meth:`to_dict` output."""
        cutoff = data.get("objective_cutoff")
        return cls(
            rows_before=data.get("rows_before", 0),
            rows_after=data.get("rows_after", 0),
            cols_before=data.get("cols_before", 0),
            cols_after=data.get("cols_after", 0),
            ints_before=data.get("ints_before", 0),
            ints_after=data.get("ints_after", 0),
            rows_removed=data.get("rows_removed", 0),
            cols_fixed=data.get("cols_fixed", 0),
            binaries_fixed=data.get("binaries_fixed", 0),
            bounds_tightened=data.get("bounds_tightened", 0),
            coeffs_tightened=data.get("coeffs_tightened", 0),
            m_shrink_total=data.get("m_shrink_total", 0.0),
            m_shrink_max=data.get("m_shrink_max", 0.0),
            symmetry_rows=data.get("symmetry_rows", 0),
            objective_cutoff=None if cutoff is None else float(cutoff),
            infeasible=data.get("infeasible", False),
        )


@dataclass
class PresolveResult:
    """A reduced form plus the presolve→postsolve mapping back to the
    original.

    Attributes:
        original: the form presolve was applied to.
        reduced: the reduced form (None when presolve proved infeasibility).
        report: what was done.
        fixed: assignment of every eliminated column (original Variable →
            value); merged into reduced-space solutions by postsolve.
        infeasible: presolve proved the model infeasible.
    """

    original: StandardForm
    reduced: StandardForm | None
    report: PresolveReport
    fixed: dict[Variable, float] = field(default_factory=dict)
    infeasible: bool = False

    def postsolve_values(
            self, values: Mapping[Variable, float]) -> dict[Variable, float]:
        """Complete a reduced-space assignment with the fixed columns so it
        covers every variable of the original form."""
        full: dict[Variable, float] = dict(self.fixed)
        full.update(values)
        return full

    def postsolve_solution(self, solution: Solution) -> Solution:
        """Map a solution of the reduced form back to the original space.

        The objective needs no adjustment (fixed-column contributions were
        folded into the reduced constant term), so certified solutions
        verify unchanged against the *original* standard form.  The presolve
        report is attached to the solution's telemetry.
        """
        if solution.values:
            solution.values = self.postsolve_values(solution.values)
        if solution.telemetry is not None:
            solution.telemetry.presolve = self.report.to_dict()
        else:
            from repro.milp.telemetry import SolveTelemetry

            solution.telemetry = SolveTelemetry(
                backend=solution.backend, status=solution.status.value,
                presolve=self.report.to_dict())
        return solution

    def map_warm_start(
            self, warm: Mapping[Variable, float]) -> dict[Variable, float] | None:
        """Project a full-space warm start onto the reduced columns.

        Returns None when the warm start is incomplete or contradicts a
        fixed column (it cannot be feasible for the reduced form then).
        """
        if self.reduced is None:
            return None
        mapped: dict[Variable, float] = {}
        for var in self.reduced.variables:
            if var not in warm:
                return None
            mapped[var] = warm[var]
        for var, val in self.fixed.items():
            if var in warm and abs(warm[var] - val) > 1e-6 * max(1.0, abs(val)):
                return None
        return mapped


def internal_objective(form: StandardForm,
                       warm: Mapping[Variable, float]) -> float | None:
    """``c @ x`` of a full-space point in the form's internal minimize sense
    (the value an objective-cutoff row compares against); None when the
    point does not cover every variable."""
    total = 0.0
    c = np.asarray(form.c, dtype=float)
    for j, var in enumerate(form.variables):
        if var not in warm:
            return None
        total += float(c[j]) * float(warm[var])
    return total


class _Presolver:
    """Mutable working state of one presolve pass."""

    def __init__(self, form: StandardForm,
                 symmetry_groups: Sequence[Sequence[Variable]],
                 objective_cutoff: float | None) -> None:
        self.form = form
        self.n = len(form.variables)
        self.lb = np.asarray(form.lb, dtype=float).copy()
        self.ub = np.asarray(form.ub, dtype=float).copy()
        self.integer = np.asarray(form.integrality) != 0
        self._orig_fixed = np.asarray(form.lb) == np.asarray(form.ub)
        self.infeasible = False
        self.report = PresolveReport(
            rows_before=form.a_matrix.shape[0], cols_before=self.n,
            ints_before=int(self.integer.sum()))

        self.row_idx: list[np.ndarray] = []
        self.row_coef: list[np.ndarray] = []
        self.row_lb: list[float] = []
        self.row_ub: list[float] = []
        csr = form.a_matrix.tocsr()
        for r in range(form.a_matrix.shape[0]):
            lo, hi = csr.indptr[r], csr.indptr[r + 1]
            idx = csr.indices[lo:hi].astype(np.int64)
            coef = csr.data[lo:hi].astype(float)
            keep = coef != 0.0
            self._append_row(idx[keep], coef[keep],
                             float(form.row_lb[r]), float(form.row_ub[r]))

        col_pos = {var: j for j, var in enumerate(form.variables)}
        for group in symmetry_groups:
            cols = [col_pos.get(v) for v in group]
            if len(cols) < 2 or any(c is None for c in cols):
                continue
            for a, b in zip(cols, cols[1:]):
                self._append_row(np.array([a, b], dtype=np.int64),
                                 np.array([1.0, -1.0]), -math.inf, 0.0)
                self.report.symmetry_rows += 1

        if objective_cutoff is not None and math.isfinite(objective_cutoff):
            c = np.asarray(form.c, dtype=float)
            idx = np.flatnonzero(c != 0.0).astype(np.int64)
            if idx.size:
                cut = objective_cutoff + 1e-9 * max(1.0, abs(objective_cutoff))
                self._append_row(idx, c[idx].copy(), -math.inf, cut)
                self.report.objective_cutoff = cut

        self.col_rows: list[list[int]] = [[] for _ in range(self.n)]
        for r, idx in enumerate(self.row_idx):
            for j in idx:
                self.col_rows[int(j)].append(r)

    def _append_row(self, idx: np.ndarray, coef: np.ndarray,
                    lb: float, ub: float) -> None:
        # Normalize pure >= rows to <= so coefficient tightening only ever
        # sees one-sided <= rows; equality/range rows stay two-sided.
        if math.isinf(ub) and not math.isinf(lb):
            coef = -coef
            lb, ub = -math.inf, -lb
        self.row_idx.append(idx)
        self.row_coef.append(coef)
        self.row_lb.append(lb)
        self.row_ub.append(ub)

    # -- activity helpers ------------------------------------------------------

    def _contribs(self, idx: np.ndarray,
                  coef: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Per-entry (min, max) activity contributions.  Coefficients are
        nonzero, so ``coef * inf`` is ±inf and never NaN."""
        lo = self.lb[idx]
        hi = self.ub[idx]
        pos = coef > 0
        clo = np.where(pos, coef * lo, coef * hi)
        chi = np.where(pos, coef * hi, coef * lo)
        return clo, chi

    @staticmethod
    def _finite_sum(contrib: np.ndarray) -> tuple[float, int]:
        """(sum of finite entries, number of infinite entries)."""
        infinite = np.isinf(contrib)
        return float(contrib[~infinite].sum()), int(infinite.sum())

    # -- bound propagation -----------------------------------------------------

    def propagate(self, budget: int | None = None) -> bool:
        """Worklist activity propagation; returns False on infeasibility."""
        n_rows = len(self.row_idx)
        if budget is None:
            budget = 30 * n_rows + 300
        queue = deque(range(n_rows))
        queued = [True] * n_rows
        processed = 0
        while queue and processed < budget and not self.infeasible:
            r = queue.popleft()
            queued[r] = False
            processed += 1
            for j in self._process_row(r):
                for rr in self.col_rows[j]:
                    if not queued[rr]:
                        queued[rr] = True
                        queue.append(rr)
        return not self.infeasible

    def _process_row(self, r: int) -> list[int]:
        """Tighten every column of row ``r`` from its activity bounds;
        returns the columns whose bounds changed."""
        idx = self.row_idx[r]
        coef = self.row_coef[r]
        if idx.size == 0:
            return []
        rlb, rub = self.row_lb[r], self.row_ub[r]
        clo, chi = self._contribs(idx, coef)
        lo_fin, lo_inf = self._finite_sum(clo)
        hi_fin, hi_inf = self._finite_sum(chi)
        if lo_inf == 0 and math.isfinite(rub) \
                and lo_fin > rub + INFEAS_TOL * (1.0 + abs(rub)):
            self.infeasible = True
            return []
        if hi_inf == 0 and math.isfinite(rlb) \
                and hi_fin < rlb - INFEAS_TOL * (1.0 + abs(rlb)):
            self.infeasible = True
            return []
        changed: list[int] = []
        for k in range(idx.size):
            j = int(idx[k])
            a = float(coef[k])
            if lo_inf == 0:
                res_lo = lo_fin - float(clo[k])
            elif lo_inf == 1 and np.isinf(clo[k]):
                res_lo = lo_fin
            else:
                res_lo = -math.inf
            if hi_inf == 0:
                res_hi = hi_fin - float(chi[k])
            elif hi_inf == 1 and np.isinf(chi[k]):
                res_hi = hi_fin
            else:
                res_hi = math.inf
            if math.isfinite(rub) and math.isfinite(res_lo):
                limit = (rub - res_lo) / a
                hit = self._tighten_ub(j, limit) if a > 0 \
                    else self._tighten_lb(j, limit)
                if hit:
                    changed.append(j)
            if math.isfinite(rlb) and math.isfinite(res_hi):
                limit = (rlb - res_hi) / a
                hit = self._tighten_lb(j, limit) if a > 0 \
                    else self._tighten_ub(j, limit)
                if hit:
                    changed.append(j)
            if self.infeasible:
                break
        return changed

    def _tighten_ub(self, j: int, implied: float) -> bool:
        if self.integer[j]:
            cand = math.floor(implied + INT_PAD)
        else:
            cand = implied + BOUND_PAD * max(1.0, abs(implied))
        if not (self.ub[j] - cand > MIN_GAIN * max(1.0, abs(cand))):
            return False
        if cand < self.lb[j]:
            if self.lb[j] - cand > INFEAS_TOL * (
                    1.0 + max(abs(cand), abs(self.lb[j]))):
                self.infeasible = True
                return False
            cand = self.lb[j]
        self.ub[j] = cand
        self.report.bounds_tightened += 1
        return True

    def _tighten_lb(self, j: int, implied: float) -> bool:
        if self.integer[j]:
            cand = math.ceil(implied - INT_PAD)
        else:
            cand = implied - BOUND_PAD * max(1.0, abs(implied))
        if not (cand - self.lb[j] > MIN_GAIN * max(1.0, abs(cand))):
            return False
        if cand > self.ub[j]:
            if cand - self.ub[j] > INFEAS_TOL * (
                    1.0 + max(abs(cand), abs(self.ub[j]))):
                self.infeasible = True
                return False
            cand = self.ub[j]
        self.lb[j] = cand
        self.report.bounds_tightened += 1
        return True

    # -- big-M / coefficient tightening ----------------------------------------

    def tighten_coefficients(self) -> None:
        """Savelsbergh coefficient tightening for binary columns in
        one-sided ``<=`` rows.

        The rules only ever *relax* a branch that the propagated bounds
        already prove redundant, so the mixed-integer feasible set is
        preserved exactly; padded bounds make the reduction conservative.
        """
        for r in range(len(self.row_idx)):
            if not (math.isinf(self.row_lb[r])
                    and math.isfinite(self.row_ub[r])):
                continue
            idx = self.row_idx[r]
            coef = self.row_coef[r]
            for k in range(idx.size):
                j = int(idx[k])
                if not (self.integer[j]
                        and self.lb[j] == 0.0 and self.ub[j] == 1.0):
                    continue
                a = float(coef[k])
                _clo, chi = self._contribs(idx, coef)
                _hi_fin, hi_inf = self._finite_sum(chi)
                if hi_inf:
                    continue
                res_hi = float(chi.sum() - chi[k])
                b = self.row_ub[r]
                gain = COEF_GAIN * (1.0 + max(abs(b), abs(res_hi)))
                if a > 0 and b - res_hi > gain and a > b - res_hi:
                    # x_j = 0 branch is redundant: shift rhs onto it and
                    # shrink the coefficient, keeping x_j = 1 identical.
                    delta = b - res_hi
                    coef[k] = a - delta
                    self.row_ub[r] = res_hi
                elif a < 0 and b < res_hi and (b - a) - res_hi > gain:
                    # x_j = 1 branch is redundant: pull the big-M relaxation
                    # coefficient up to exactly what the bounds need.
                    delta = (b - res_hi) - a
                    coef[k] = b - res_hi
                else:
                    continue
                self.report.coeffs_tightened += 1
                self.report.m_shrink_total += delta
                self.report.m_shrink_max = max(self.report.m_shrink_max, delta)

    # -- reduction -------------------------------------------------------------

    def finalize(self) -> tuple[StandardForm | None, dict[Variable, float]]:
        """Eliminate fixed columns, drop redundant rows, build the reduced
        form; returns (None, {}) when infeasibility surfaces."""
        # Snap integer bounds to integral values (sound: the propagated box
        # contains every feasible point, and integer points need integral
        # bounds); an empty integral interval is infeasibility.
        ints = np.flatnonzero(self.integer)
        if ints.size:
            ilb = np.ceil(self.lb[ints] - INT_PAD)
            iub = np.floor(self.ub[ints] + INT_PAD)
            if np.any(ilb > iub):
                self.infeasible = True
                return None, {}
            self.lb[ints] = ilb
            self.ub[ints] = iub

        fixed_mask = self.lb == self.ub
        kept_cols = np.flatnonzero(~fixed_mask)
        fixed_cols = np.flatnonzero(fixed_mask)
        col_new = -np.ones(self.n, dtype=np.int64)
        col_new[kept_cols] = np.arange(kept_cols.size)

        new_lb: list[float] = []
        new_ub: list[float] = []
        coo_r: list[int] = []
        coo_c: list[int] = []
        coo_d: list[float] = []
        n_kept_rows = 0
        for r in range(len(self.row_idx)):
            idx = self.row_idx[r]
            coef = self.row_coef[r]
            live = ~fixed_mask[idx]
            shift = float((coef[~live] * self.lb[idx[~live]]).sum())
            rlb = self.row_lb[r] - shift if math.isfinite(self.row_lb[r]) \
                else -math.inf
            rub = self.row_ub[r] - shift if math.isfinite(self.row_ub[r]) \
                else math.inf
            kidx = idx[live]
            kcoef = coef[live]
            if kidx.size == 0:
                scale = 1.0 + max(abs(rlb) if math.isfinite(rlb) else 0.0,
                                  abs(rub) if math.isfinite(rub) else 0.0)
                if rlb > INFEAS_TOL * scale or rub < -INFEAS_TOL * scale:
                    self.infeasible = True
                    return None, {}
                self.report.rows_removed += 1
                continue
            clo, chi = self._contribs(kidx, kcoef)
            lo_fin, lo_inf = self._finite_sum(clo)
            hi_fin, hi_inf = self._finite_sum(chi)
            lo = -math.inf if lo_inf else lo_fin
            hi = math.inf if hi_inf else hi_fin
            # Strict redundancy: the row holds at every point of the box.
            if (not math.isfinite(rlb) or lo >= rlb) \
                    and (not math.isfinite(rub) or hi <= rub):
                self.report.rows_removed += 1
                continue
            row = n_kept_rows
            n_kept_rows += 1
            new_lb.append(rlb)
            new_ub.append(rub)
            coo_r.extend([row] * int(kidx.size))
            coo_c.extend(col_new[kidx].tolist())
            coo_d.extend(kcoef.tolist())

        c = np.asarray(self.form.c, dtype=float)
        fixed: dict[Variable, float] = {}
        for j in fixed_cols.tolist():
            value = float(self.lb[j])
            if self.integer[j]:
                if abs(value - round(value)) > INT_PAD:
                    self.infeasible = True
                    return None, {}
                value = float(round(value))
            fixed[self.form.variables[j]] = value

        newly_fixed = fixed_mask & ~self._orig_fixed
        self.report.cols_fixed = int(newly_fixed.sum())
        self.report.binaries_fixed = int((newly_fixed & self.integer).sum())

        reduced = StandardForm(
            c=c[kept_cols],
            c0=float(self.form.c0
                     + sum(float(c[j]) * fixed[self.form.variables[j]]
                           for j in fixed_cols.tolist())),
            a_matrix=sparse.csr_matrix(
                (coo_d, (coo_r, coo_c)), shape=(n_kept_rows, kept_cols.size)),
            row_lb=np.array(new_lb, dtype=float),
            row_ub=np.array(new_ub, dtype=float),
            lb=self.lb[kept_cols],
            ub=self.ub[kept_cols],
            integrality=np.asarray(self.form.integrality)[kept_cols],
            variables=tuple(self.form.variables[int(j)] for j in kept_cols),
            maximize=self.form.maximize)
        return reduced, fixed


def presolve_form(form: StandardForm, *,
                  symmetry_groups: Sequence[Sequence[Variable]] = (),
                  objective_cutoff: float | None = None,
                  coefficient_tightening: bool = True) -> PresolveResult:
    """Run the full presolve pipeline on ``form``.

    Args:
        form: the standard form to reduce (not mutated).
        symmetry_groups: groups of interchangeable columns (e.g. the x
            variables of identical window modules); consecutive members get
            ``x_a <= x_b`` symmetry-breaking rows.  The caller is
            responsible for the groups being genuine symmetries.
        objective_cutoff: internal-minimize-sense value ``c @ x`` of a known
            feasible point; adds the valid row ``c @ x <= cutoff`` (padded)
            before propagation.
        coefficient_tightening: run the Savelsbergh big-M reduction.  It is
            always objective-preserving, but only pays off for solvers whose
            LP relaxations see the tightened rows verbatim (the from-scratch
            branch-and-bound); HiGHS re-presolves internally and its
            heuristics react badly to pre-shrunk coefficients, so the
            registry disables this step for it.

    Returns:
        The :class:`PresolveResult` with the reduced form, the fixed-column
        mapping, and the :class:`PresolveReport`.
    """
    pre = _Presolver(form, symmetry_groups, objective_cutoff)
    pre.propagate()
    if coefficient_tightening and not pre.infeasible:
        # Tightened coefficients change activities, enabling another round
        # of propagation (and vice versa); two alternations capture the
        # cascade without open-ended looping.
        pre.tighten_coefficients()
        pre.propagate()
        pre.tighten_coefficients()
    reduced: StandardForm | None = None
    fixed: dict[Variable, float] = {}
    if not pre.infeasible:
        reduced, fixed = pre.finalize()
    report = pre.report
    report.infeasible = pre.infeasible
    if reduced is not None:
        report.rows_after = reduced.a_matrix.shape[0]
        report.cols_after = len(reduced.variables)
        report.ints_after = int(np.count_nonzero(reduced.integrality))
    return PresolveResult(original=form, reduced=reduced, report=report,
                          fixed=fixed, infeasible=pre.infeasible)
