"""Linear expressions and decision variables.

A small algebraic layer in the style of PuLP/LINDO's input language: variables
combine with ``+ - *`` into :class:`LinExpr`; comparing an expression with
``<= >= ==`` yields a constraint (see :mod:`repro.milp.model`).  Expressions
are dictionaries mapping variables to coefficients plus a constant, so
building a model is O(number of nonzeros).
"""

from __future__ import annotations

from enum import Enum
from typing import TYPE_CHECKING, Iterable, Mapping, Union

if TYPE_CHECKING:
    from repro.milp.model import Constraint

Number = Union[int, float]


class VarKind(str, Enum):
    """Variable domain kinds."""

    CONTINUOUS = "continuous"
    BINARY = "binary"
    INTEGER = "integer"


class _Algebra:
    """Shared operator implementations for Variable and LinExpr."""

    def to_expr(self) -> "LinExpr":
        """This object as a :class:`LinExpr` (overridden by subclasses)."""
        raise NotImplementedError

    def __add__(self, other: "ExprLike") -> "LinExpr":
        return self.to_expr()._combined(other, 1.0)

    def __radd__(self, other: "ExprLike") -> "LinExpr":
        return self.__add__(other)

    def __sub__(self, other: "ExprLike") -> "LinExpr":
        return self.to_expr()._combined(other, -1.0)

    def __rsub__(self, other: "ExprLike") -> "LinExpr":
        return (-self.to_expr())._combined(other, 1.0)

    def __mul__(self, scalar: Number) -> "LinExpr":
        if not isinstance(scalar, (int, float)):
            return NotImplemented
        expr = self.to_expr()
        return LinExpr({v: c * scalar for v, c in expr.terms.items()},
                       expr.constant * scalar)

    def __rmul__(self, scalar: Number) -> "LinExpr":
        return self.__mul__(scalar)

    def __truediv__(self, scalar: Number) -> "LinExpr":
        if not isinstance(scalar, (int, float)):
            return NotImplemented
        return self.__mul__(1.0 / scalar)

    def __neg__(self) -> "LinExpr":
        return self.__mul__(-1.0)

    # -- comparisons build constraints -------------------------------------------

    def __le__(self, other: "ExprLike") -> "Constraint":
        from repro.milp.model import Constraint, Sense

        return Constraint(self.to_expr() - _as_expr(other), Sense.LE)

    def __ge__(self, other: "ExprLike") -> "Constraint":
        from repro.milp.model import Constraint, Sense

        return Constraint(self.to_expr() - _as_expr(other), Sense.GE)

    def __eq__(self, other: object) -> "Constraint":  # type: ignore[override]
        from repro.milp.model import Constraint, Sense

        if not isinstance(other, (int, float, Variable, LinExpr)):
            return NotImplemented  # type: ignore[return-value]
        return Constraint(self.to_expr() - _as_expr(other), Sense.EQ)

    __hash__ = None  # type: ignore[assignment]  # redefined by Variable


class Variable(_Algebra):
    """A decision variable.

    Create variables through :meth:`repro.milp.model.Model.add_var`; the model
    assigns the column index.  Variables hash by identity so they can key
    expression dictionaries.
    """

    __slots__ = ("name", "index", "lb", "ub", "kind")

    def __init__(self, name: str, index: int, lb: float, ub: float,
                 kind: VarKind) -> None:
        self.name = name
        self.index = index
        self.lb = lb
        self.ub = ub
        self.kind = kind

    def to_expr(self) -> "LinExpr":
        """The expression ``1.0 * self``."""
        return LinExpr({self: 1.0}, 0.0)

    def __hash__(self) -> int:
        return id(self)

    def __repr__(self) -> str:
        return f"Variable({self.name!r}, {self.kind.value}, [{self.lb}, {self.ub}])"

    @property
    def is_integral(self) -> bool:
        """True for binary/integer variables."""
        return self.kind is not VarKind.CONTINUOUS


class LinExpr(_Algebra):
    """A linear expression: ``sum(coeff * var) + constant``."""

    __slots__ = ("terms", "constant")

    def __init__(self, terms: Mapping[Variable, float] | None = None,
                 constant: float = 0.0) -> None:
        self.terms: dict[Variable, float] = dict(terms or {})
        self.constant = float(constant)

    def to_expr(self) -> "LinExpr":
        """Already an expression; returns self."""
        return self

    def _combined(self, other: "ExprLike", sign: float) -> "LinExpr":
        result = LinExpr(self.terms, self.constant)
        other_expr = _as_expr(other)
        for var, coeff in other_expr.terms.items():
            result.terms[var] = result.terms.get(var, 0.0) + sign * coeff
        result.constant += sign * other_expr.constant
        return result

    def value(self, assignment: Mapping[Variable, float]) -> float:
        """Evaluate the expression under a variable assignment."""
        return self.constant + sum(c * assignment[v] for v, c in self.terms.items())

    def simplified(self, eps: float = 1e-12) -> "LinExpr":
        """A copy with (numerically) zero coefficients removed."""
        return LinExpr({v: c for v, c in self.terms.items() if abs(c) > eps},
                       self.constant)

    def __repr__(self) -> str:
        parts = [f"{c:+g}*{v.name}" for v, c in self.terms.items()]
        if self.constant or not parts:
            parts.append(f"{self.constant:+g}")
        return " ".join(parts)

    __hash__ = None  # type: ignore[assignment]


ExprLike = Union[Number, Variable, LinExpr]


def _as_expr(value: ExprLike) -> LinExpr:
    """Coerce a number, variable, or expression to a LinExpr."""
    if isinstance(value, LinExpr):
        return value
    if isinstance(value, Variable):
        return value.to_expr()
    if isinstance(value, (int, float)):
        return LinExpr({}, float(value))
    raise TypeError(f"cannot build a linear expression from {value!r}")


def lin_sum(items: Iterable[ExprLike]) -> LinExpr:
    """Sum expressions efficiently (avoids quadratic repeated ``+``)."""
    result = LinExpr()
    for item in items:
        expr = _as_expr(item)
        for var, coeff in expr.terms.items():
            result.terms[var] = result.terms.get(var, 0.0) + coeff
        result.constant += expr.constant
    return result
