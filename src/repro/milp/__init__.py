"""Mathematical-programming substrate (the paper's LINDO replacement).

The paper solves each floorplanning subproblem with the LINDO mixed-integer
linear programming package.  This subpackage provides the equivalent: an
algebraic modeling layer (:class:`~repro.milp.model.Model`,
:class:`~repro.milp.expr.LinExpr`) plus interchangeable solver backends:

* ``"highs"`` — HiGHS via :func:`scipy.optimize.milp` (fast default),
* ``"bnb"``   — a from-scratch branch-and-bound over LP relaxations,
* ``"simplex"`` — a pure-NumPy two-phase simplex (LP problems only; also the
  optional relaxation engine inside ``"bnb"``).
"""

from repro.milp.expr import LinExpr, Variable, VarKind
from repro.milp.lpformat import read_lp, write_lp
from repro.milp.model import Constraint, Model, Sense
from repro.milp.presolve import PresolveReport, PresolveResult, presolve_form
from repro.milp.solution import Solution, SolveStatus
from repro.milp.solvers.registry import available_backends, solve, solve_many

__all__ = [
    "LinExpr",
    "Variable",
    "VarKind",
    "Constraint",
    "Model",
    "Sense",
    "Solution",
    "SolveStatus",
    "PresolveReport",
    "PresolveResult",
    "presolve_form",
    "solve",
    "solve_many",
    "available_backends",
    "read_lp",
    "write_lp",
]
