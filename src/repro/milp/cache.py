"""Canonical solve cache: memoize certified MILP solutions across solves.

The successive-augmentation loop, the chip-width sweep, re-linearization
rounds, and repeated bench/fuzz runs all solve long sequences of *identical*
MILP subproblems — the same window over the same covering rectangles, the
same legalization LP, the same fixture on the next CI run.  This module
caches solutions keyed by a **canonical structural hash** of the model's
:class:`~repro.milp.model.StandardForm`, so a re-solve of a structurally
identical model is a dictionary lookup instead of a branch-and-bound run.

Canonicalization (see :func:`canonical_form_text`):

* constraint rows are scaled by their largest absolute coefficient,
  sign-normalized, and **sorted** — row order and row scaling do not change
  the key;
* every coefficient and bound is quantized to :data:`KEY_SIGFIGS`
  significant digits (the documented tolerance) so bitwise float noise
  below that resolution cannot split equivalent models;
* the variable-class vector (kind, lb, ub per column) and the objective
  (unscaled — scaling the objective changes its value) complete the key;
* a caller-supplied *context* tuple (backend, presolve flag, warm-start
  presence, tolerances, the non-overlap ``formulation`` identity, the
  fixed-outline die, and the ECO window shape ``(window, frozen)`` of
  incremental re-floorplanning subforms) is
  folded in, because those choices change which optimal vertex a
  deterministic backend returns even when the model doesn't.  The
  formulation entry also guards the axis structurally: two encodings of
  the same instance already canonicalize to different texts (different
  binaries and rows), but the explicit context keeps them apart even if a
  future encoding were canonically ambiguous.

Safety discipline (the reason this lives next to :mod:`repro.check`): a
cache that serves a stale or mis-keyed solution is worse than no cache, so
**every hit is independently re-certified** against the requesting model's
raw standard form via :func:`repro.check.certificate.check_certificate`
before it is served.  A hit that fails certification is evicted and the
model is re-solved — a poisoned cache can cost time, never correctness.
Only proven-``OPTIMAL`` solutions with a full variable assignment are ever
stored.

Tiers:

* an in-process LRU dictionary (always on);
* an optional on-disk tier of JSON blobs — one file per key — shared by
  parallel width-search workers and by consecutive runs.  The directory
  comes from the explicit ``cache_dir`` argument or the
  ``REPRO_CACHE_DIR`` environment variable (``~/.cache/repro-floorplan``
  is the conventional location, see :func:`default_cache_dir`).  Writes
  are atomic (temp file + ``os.replace``) so concurrent writers can race
  on the same key; a corrupt or truncated blob is treated as a miss and
  removed.
"""

from __future__ import annotations

import json
import math
import os
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from repro.milp.model import Model, StandardForm
from repro.milp.solution import Solution, SolveStatus
from repro.milp.telemetry import SolveTelemetry

#: Significant digits kept when quantizing coefficients and bounds into the
#: canonical key — the documented structural tolerance of the cache.  Two
#: forms whose scaled coefficients agree to 12 significant digits hash
#: identically; anything farther apart is a different key.
KEY_SIGFIGS = 12

#: Environment variable naming the on-disk cache directory.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Version stamped into every cache blob; bumping it invalidates old blobs.
BLOB_VERSION = 1

#: Default capacity of the in-memory LRU tier.
DEFAULT_MAX_ENTRIES = 256


def default_cache_dir() -> str:
    """The conventional on-disk cache location
    (``~/.cache/repro-floorplan``)."""
    return os.path.join(os.path.expanduser("~"), ".cache", "repro-floorplan")


def resolve_cache_dir(cache_dir: str | os.PathLike | None = None) -> str | None:
    """The effective disk-tier directory: the explicit argument, else the
    ``REPRO_CACHE_DIR`` environment variable, else None (memory-only)."""
    if cache_dir:
        return str(cache_dir)
    env = os.environ.get(CACHE_DIR_ENV, "").strip()
    return env or None


# ---------------------------------------------------------------------------
# canonical structural hashing
# ---------------------------------------------------------------------------

def _q(value: float) -> str:
    """Quantize one float to :data:`KEY_SIGFIGS` significant digits."""
    if math.isnan(value):
        return "nan"
    if value == math.inf:
        return "inf"
    if value == -math.inf:
        return "-inf"
    if value == 0.0:
        return "0"
    return format(value, f".{KEY_SIGFIGS}g")


def canonical_form_text(form: StandardForm,
                        context: tuple = ()) -> str:
    """The canonical pre-hash text of a standard form.

    Exposed (rather than hidden inside the hash) so the collision property
    tests can assert that distinct keys correspond exactly to distinct
    canonical texts.  See the module docstring for the normalization rules.
    """
    lines = [f"cachev{BLOB_VERSION}",
             "ctx=" + "|".join(str(item) for item in context)]

    lines.append("vars=" + ";".join(
        f"{v.kind.value[0]}:{_q(lo)}:{_q(hi)}"
        for v, lo, hi in zip(form.variables, form.lb, form.ub)))

    lines.append("obj=" + ",".join(_q(c) for c in form.c)
                 + f"|{_q(form.c0)}|{int(form.maximize)}")

    a = form.a_matrix.tocsr()
    a.sum_duplicates()
    rows: list[str] = []
    for i in range(a.shape[0]):
        start, end = a.indptr[i], a.indptr[i + 1]
        pairs = sorted((int(c), float(v))
                       for c, v in zip(a.indices[start:end],
                                       a.data[start:end]) if v != 0.0)
        lo, hi = float(form.row_lb[i]), float(form.row_ub[i])
        if pairs:
            scale = max(abs(v) for _c, v in pairs)
            # Sign-normalize: a row and its negation (bounds swapped) are
            # the same constraint.
            if pairs[0][1] < 0.0:
                scale = -scale
            pairs = [(c, v / scale) for c, v in pairs]
            lo, hi = lo / scale, hi / scale
            if scale < 0.0:
                lo, hi = hi, lo
        rows.append(",".join(f"{c}:{_q(v)}" for c, v in pairs)
                    + f"|{_q(lo)}|{_q(hi)}")
    rows.sort()
    lines.append("rows:")
    lines.extend(rows)
    return "\n".join(lines)


def canonical_form_key(form: StandardForm, context: tuple = ()) -> str:
    """SHA-256 hex digest of :func:`canonical_form_text`."""
    import hashlib

    text = canonical_form_text(form, context)
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


# ---------------------------------------------------------------------------
# blobs: the stored representation of one certified solve
# ---------------------------------------------------------------------------

def blob_from_solution(solution: Solution, form: StandardForm
                       ) -> dict[str, Any] | None:
    """The JSON-safe cache blob for ``solution``, or None when the solution
    is not cacheable (only proven-OPTIMAL results with a full, finite
    assignment are stored)."""
    if solution.status is not SolveStatus.OPTIMAL:
        return None
    if not math.isfinite(solution.objective):
        return None
    values: list[float] = []
    for var in form.variables:
        value = solution.values.get(var)
        if value is None or not math.isfinite(value):
            return None
        values.append(float(value))
    return {
        "version": BLOB_VERSION,
        "status": solution.status.value,
        "objective": float(solution.objective),
        "bound": float(solution.bound)
        if math.isfinite(solution.bound) else None,
        "values": values,
        "n_variables": len(values),
        "n_nodes": int(solution.n_nodes),
        "backend": solution.backend,
        "telemetry": solution.telemetry.to_dict()
        if solution.telemetry is not None else None,
    }


def _valid_blob(blob: Any, n_variables: int) -> bool:
    """Structural validation of a loaded blob (corrupt blobs are misses)."""
    if not isinstance(blob, dict) or blob.get("version") != BLOB_VERSION:
        return False
    values = blob.get("values")
    if not isinstance(values, list) or len(values) != n_variables:
        return False
    if blob.get("status") != SolveStatus.OPTIMAL.value:
        return False
    objective = blob.get("objective")
    return isinstance(objective, (int, float)) and math.isfinite(objective)


def solution_from_blob(blob: dict[str, Any], form: StandardForm,
                       tier: str, key: str,
                       key_seconds: float) -> Solution:
    """Rebuild a :class:`Solution` from a cache blob, rebinding values to
    the *requesting* model's variables and stamping the telemetry with the
    cache provenance (``telemetry.cache``)."""
    telemetry = SolveTelemetry.from_dict(blob["telemetry"]) \
        if blob.get("telemetry") else SolveTelemetry(
            backend=blob.get("backend", ""),
            status=blob["status"],
            n_variables=len(form.variables),
            n_constraints=form.a_matrix.shape[0])
    telemetry.cache = {"hit": True, "tier": tier, "key": key[:16],
                       "key_seconds": key_seconds, "recertified": True}
    bound = blob.get("bound")
    return Solution(
        status=SolveStatus(blob["status"]),
        objective=float(blob["objective"]),
        values={var: float(v)
                for var, v in zip(form.variables, blob["values"])},
        bound=math.nan if bound is None else float(bound),
        n_nodes=int(blob.get("n_nodes", 0)),
        solve_seconds=key_seconds,
        backend=blob.get("backend", ""),
        message=f"served from solve cache ({tier} tier, re-certified)",
        telemetry=telemetry,
    )


# ---------------------------------------------------------------------------
# the cache
# ---------------------------------------------------------------------------

@dataclass
class CacheStats:
    """Process-wide counters of one :class:`SolveCache`."""

    hits: int = 0
    memory_hits: int = 0
    disk_hits: int = 0
    misses: int = 0
    stores: int = 0
    evictions: int = 0
    rejected: int = 0        # hits evicted because re-certification failed
    key_seconds: float = 0.0

    @property
    def lookups(self) -> int:
        """Total lookups answered."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """hits / lookups (0.0 before any lookup)."""
        return self.hits / self.lookups if self.lookups else 0.0

    def to_dict(self) -> dict[str, Any]:
        """A JSON-safe representation."""
        return {
            "hits": self.hits,
            "memory_hits": self.memory_hits,
            "disk_hits": self.disk_hits,
            "misses": self.misses,
            "stores": self.stores,
            "evictions": self.evictions,
            "rejected": self.rejected,
            "hit_rate": self.hit_rate,
            "key_seconds": self.key_seconds,
        }


class SolveCache:
    """A two-tier (memory LRU + optional disk) cache of certified solves.

    Args:
        cache_dir: on-disk tier directory; None resolves through
            :func:`resolve_cache_dir` (explicit arg > ``REPRO_CACHE_DIR`` >
            memory-only).
        max_entries: capacity of the in-memory LRU tier.
    """

    def __init__(self, cache_dir: str | os.PathLike | None = None, *,
                 max_entries: int = DEFAULT_MAX_ENTRIES) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.cache_dir = resolve_cache_dir(cache_dir)
        self.max_entries = max_entries
        self.stats = CacheStats()
        self._memory: OrderedDict[str, dict[str, Any]] = OrderedDict()

    # -- tiers ------------------------------------------------------------------

    def _disk_path(self, key: str) -> Path:
        return Path(self.cache_dir) / f"{key}.json"

    def _read_disk(self, key: str) -> dict[str, Any] | None:
        if self.cache_dir is None:
            return None
        path = self._disk_path(key)
        try:
            blob = json.loads(path.read_text())
        except FileNotFoundError:
            return None
        except (OSError, json.JSONDecodeError, UnicodeDecodeError, ValueError):
            # Corrupt or truncated blob (a writer died mid-write before the
            # atomic-rename discipline, disk corruption, ...): a miss, and
            # the bad blob is removed so it cannot poison later lookups.
            self._unlink_quietly(path)
            return None
        if not isinstance(blob, dict):
            self._unlink_quietly(path)
            return None
        return blob

    def _write_disk(self, key: str, blob: dict[str, Any]) -> None:
        if self.cache_dir is None:
            return
        path = self._disk_path(key)
        tmp = path.with_name(f".{key}.{os.getpid()}.{id(blob):x}.tmp")
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            tmp.write_text(json.dumps(blob) + "\n")
            # Atomic on POSIX: concurrent writers race benignly — the last
            # complete blob wins, readers never observe a partial file.
            os.replace(tmp, path)
        except OSError:
            self._unlink_quietly(tmp)

    @staticmethod
    def _unlink_quietly(path: Path) -> None:
        try:
            path.unlink()
        except OSError:
            pass

    # -- public API ------------------------------------------------------------

    def lookup(self, key: str, n_variables: int
               ) -> tuple[dict[str, Any] | None, str | None]:
        """The blob stored under ``key`` and the tier that answered
        (``"memory"`` / ``"disk"``), or ``(None, None)`` on a miss.
        Invalid blobs (wrong version, wrong column count, non-OPTIMAL)
        count as misses."""
        blob = self._memory.get(key)
        if blob is not None and _valid_blob(blob, n_variables):
            self._memory.move_to_end(key)
            self.stats.hits += 1
            self.stats.memory_hits += 1
            return blob, "memory"
        blob = self._read_disk(key)
        if blob is not None and _valid_blob(blob, n_variables):
            self._remember(key, blob)
            self.stats.hits += 1
            self.stats.disk_hits += 1
            return blob, "disk"
        self.stats.misses += 1
        return None, None

    def store(self, key: str, blob: dict[str, Any]) -> None:
        """Store a blob in both tiers."""
        self._remember(key, blob)
        self._write_disk(key, blob)
        self.stats.stores += 1

    def evict(self, key: str) -> None:
        """Remove ``key`` from both tiers (used when a hit fails
        re-certification)."""
        self._memory.pop(key, None)
        if self.cache_dir is not None:
            self._unlink_quietly(self._disk_path(key))
        self.stats.evictions += 1

    def clear(self) -> None:
        """Drop the memory tier (disk blobs are left in place)."""
        self._memory.clear()

    @property
    def n_memory_entries(self) -> int:
        """Entries currently held by the LRU tier."""
        return len(self._memory)

    def _remember(self, key: str, blob: dict[str, Any]) -> None:
        self._memory[key] = blob
        self._memory.move_to_end(key)
        while len(self._memory) > self.max_entries:
            self._memory.popitem(last=False)


# ---------------------------------------------------------------------------
# registry glue: serve / store with certification
# ---------------------------------------------------------------------------

def serve_cached(cache: SolveCache, key: str, model: Model,
                 form: StandardForm, *, int_tol: float = 1e-6,
                 mip_rel_gap: float = 1e-4,
                 key_seconds: float = 0.0) -> Solution | None:
    """Look up ``key`` and serve the stored solution **only if it
    re-certifies** against ``model``'s raw standard form.

    A hit that fails :func:`repro.check.certificate.check_certificate` is
    evicted from every tier and None is returned so the caller re-solves —
    the cache can never be the component that corrupts a floorplan.
    """
    blob, tier = cache.lookup(key, len(form.variables))
    if blob is None:
        return None
    solution = solution_from_blob(blob, form, tier or "memory", key,
                                  key_seconds)
    # Imported lazily: repro.check pulls in the fuzz harness, which imports
    # the solver registry, which imports this module.
    from repro.check.certificate import check_certificate

    report = check_certificate(model, solution, form=form, int_tol=int_tol,
                               mip_rel_gap=mip_rel_gap)
    if not report.ok:
        cache.evict(key)
        cache.stats.rejected += 1
        return None
    return solution


def record_store(cache: SolveCache, key: str, solution: Solution,
                 form: StandardForm, *, key_seconds: float = 0.0) -> bool:
    """Store ``solution`` under ``key`` if it is cacheable; annotate its
    telemetry with the miss provenance either way.  Returns True when
    stored."""
    if solution.telemetry is not None:
        solution.telemetry.cache = {"hit": False, "tier": None,
                                    "key": key[:16],
                                    "key_seconds": key_seconds,
                                    "recertified": False}
    blob = blob_from_solution(solution, form)
    if blob is None:
        return False
    cache.store(key, blob)
    return True


# ---------------------------------------------------------------------------
# process-wide cache registry
# ---------------------------------------------------------------------------

_CACHES: dict[str | None, SolveCache] = {}


def get_cache(cache_dir: str | os.PathLike | None = None) -> SolveCache:
    """The process-wide :class:`SolveCache` for the resolved directory
    (one shared instance per directory; one memory-only instance for
    None)."""
    resolved = resolve_cache_dir(cache_dir)
    cache = _CACHES.get(resolved)
    if cache is None:
        cache = SolveCache(resolved)
        _CACHES[resolved] = cache
    return cache


def clear_caches() -> None:
    """Forget every process-wide cache instance (tests use this to isolate
    cache state between cases; disk blobs are untouched)."""
    _CACHES.clear()
