"""Solver results."""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.milp.expr import LinExpr, Variable
from repro.milp.telemetry import SolveTelemetry


class SolveStatus(str, Enum):
    """Outcome of a solve call."""

    OPTIMAL = "optimal"
    FEASIBLE = "feasible"          # stopped at a limit with an incumbent
    TIMEOUT = "timeout"            # wall-clock limit hit, incumbent available
    INFEASIBLE = "infeasible"
    UNBOUNDED = "unbounded"
    LIMIT = "limit"                # stopped at a limit with no incumbent
    ERROR = "error"

    @property
    def has_solution(self) -> bool:
        """True when variable values are available."""
        return self in (SolveStatus.OPTIMAL, SolveStatus.FEASIBLE,
                        SolveStatus.TIMEOUT)


@dataclass
class Solution:
    """The result of solving a :class:`~repro.milp.model.Model`.

    Attributes:
        status: solve outcome.
        objective: objective value in the model's own sense (meaningful only
            when ``status.has_solution``).
        values: assignment for every model variable.  When the solve ran
            through presolve, these are *postsolved*: the backend's
            reduced-space values completed with every presolve-fixed column
            (see :meth:`repro.milp.presolve.PresolveResult.postsolve_solution`),
            so the assignment always covers the original model and is what
            the independent certifier verifies against the raw standard
            form.
        bound: best dual bound proven (same sense as ``objective``).
        n_nodes: branch-and-bound nodes explored (0 for pure LPs / HiGHS
            when not reported).
        solve_seconds: wall-clock time in the backend.
        backend: name of the backend that produced this solution.
        message: backend diagnostic text.
        telemetry: structured per-solve statistics (None when the backend
            does not record them).
    """

    status: SolveStatus
    objective: float = float("nan")
    values: dict[Variable, float] = field(default_factory=dict)
    bound: float = float("nan")
    n_nodes: int = 0
    solve_seconds: float = 0.0
    backend: str = ""
    message: str = ""
    telemetry: SolveTelemetry | None = None

    def __getitem__(self, var: Variable) -> float:
        """Value of ``var`` in this solution."""
        return self.values[var]

    def value(self, expr: "LinExpr | Variable") -> float:
        """Evaluate an expression or variable under this solution."""
        if isinstance(expr, Variable):
            return self.values[expr]
        return expr.value(self.values)

    def rounded(self, var: Variable) -> int:
        """Integer value of an integral variable (rounds solver noise)."""
        return round(self.values[var])

    def presolve_report(self):
        """The :class:`~repro.milp.presolve.PresolveReport` of the presolve
        pass behind this solution, or None when presolve did not run."""
        if self.telemetry is None or self.telemetry.presolve is None:
            return None
        from repro.milp.presolve import PresolveReport

        return PresolveReport.from_dict(self.telemetry.presolve)

    def gap(self) -> float:
        """Relative optimality gap ``|objective - bound| / max(1, |objective|)``
        (0.0 when the bound is unavailable)."""
        import math

        if math.isnan(self.bound) or math.isnan(self.objective):
            return 0.0
        return abs(self.objective - self.bound) / max(1.0, abs(self.objective))
