"""Floorplan rendering: SVG and ASCII (Figures 5-6).

No external plotting dependency: SVG is emitted as text, and a coarse ASCII
raster serves terminal output.  :func:`render_svg` draws module rectangles,
envelope outlines, and (optionally) routed net trees over the channel graph,
regenerating the paper's Figure 5 (the ami33 floorplan) and Figure 6 (the
final floorplan with routing space).
"""

from __future__ import annotations

from typing import Mapping

from repro.core.placement import Placement
from repro.geometry.rect import Rect
from repro.routing.graph import ChannelGraph
from repro.routing.result import RoutingResult

#: Fill palette cycled over modules.
_PALETTE = (
    "#8dd3c7", "#ffffb3", "#bebada", "#fb8072", "#80b1d3", "#fdb462",
    "#b3de69", "#fccde5", "#d9d9d9", "#bc80bd", "#ccebc5", "#ffed6f",
)


def render_svg(placements: Mapping[str, Placement], chip: Rect, *,
               routing: RoutingResult | None = None,
               channel_graph: ChannelGraph | None = None,
               show_envelopes: bool = True,
               scale: float = 6.0, label_modules: bool = True) -> str:
    """Render a floorplan (optionally with routes) as an SVG document.

    Args:
        placements: placed modules.
        chip: the chip rectangle.
        routing: routed nets to overlay (requires ``channel_graph``).
        channel_graph: the graph the routes refer to.
        show_envelopes: draw dashed envelope outlines where they differ from
            the module rects.
        scale: SVG pixels per floorplan unit.
        label_modules: write module names inside the rectangles.

    Returns:
        The SVG text.
    """
    margin = 10.0
    width = chip.w * scale + 2 * margin
    height = chip.h * scale + 2 * margin

    def sx(x: float) -> float:
        return margin + x * scale

    def sy(y: float) -> float:
        # SVG y grows downward; floorplan y grows upward.
        return margin + (chip.h - y) * scale

    parts: list[str] = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width:.0f}" '
        f'height="{height:.0f}" viewBox="0 0 {width:.0f} {height:.0f}">',
        f'<rect x="{sx(chip.x):.1f}" y="{sy(chip.y2):.1f}" '
        f'width="{chip.w * scale:.1f}" height="{chip.h * scale:.1f}" '
        'fill="#f7f7f7" stroke="#333" stroke-width="1.5"/>',
    ]

    for index, (name, p) in enumerate(sorted(placements.items())):
        color = _PALETTE[index % len(_PALETTE)]
        if show_envelopes and p.envelope.area > p.rect.area + 1e-9:
            e = p.envelope
            parts.append(
                f'<rect x="{sx(e.x):.1f}" y="{sy(e.y2):.1f}" '
                f'width="{e.w * scale:.1f}" height="{e.h * scale:.1f}" '
                'fill="none" stroke="#999" stroke-width="0.6" '
                'stroke-dasharray="3,2"/>')
        r = p.rect
        parts.append(
            f'<rect x="{sx(r.x):.1f}" y="{sy(r.y2):.1f}" '
            f'width="{r.w * scale:.1f}" height="{r.h * scale:.1f}" '
            f'fill="{color}" stroke="#222" stroke-width="0.8"/>')
        if label_modules:
            font = max(6.0, min(r.w, r.h) * scale * 0.35)
            parts.append(
                f'<text x="{sx(r.cx):.1f}" y="{sy(r.cy):.1f}" '
                f'font-size="{font:.0f}" text-anchor="middle" '
                f'dominant-baseline="middle" font-family="sans-serif">'
                f'{name}</text>')

    if routing is not None and channel_graph is not None:
        parts.extend(_route_lines(routing, channel_graph, sx, sy))

    parts.append("</svg>")
    return "\n".join(parts)


def _route_lines(routing: RoutingResult, channel_graph: ChannelGraph,
                 sx, sy) -> list[str]:
    """Polyline segments for every routed edge, opacity scaled by usage."""
    lines: list[str] = []
    max_usage = max(routing.edge_usage.values(), default=1.0)
    for (u, v), usage in sorted(routing.edge_usage.items()):
        if not channel_graph.graph.has_edge(u, v):
            continue
        cu = channel_graph.graph.nodes[u]["center"]
        cv = channel_graph.graph.nodes[v]["center"]
        width = 0.6 + 1.6 * (usage / max_usage)
        lines.append(
            f'<line x1="{sx(cu[0]):.1f}" y1="{sy(cu[1]):.1f}" '
            f'x2="{sx(cv[0]):.1f}" y2="{sy(cv[1]):.1f}" '
            f'stroke="#d62728" stroke-width="{width:.1f}" '
            'stroke-opacity="0.55"/>')
    return lines


def render_augmentation_frames(trace, chip: Rect, *,
                               scale: float = 6.0) -> list[tuple[str, str]]:
    """SVG frames of the successive-augmentation sequence (Figure 2).

    Requires a trace recorded with
    :attr:`~repro.core.config.FloorplanConfig.record_snapshots`.  Each frame
    shows the floorplan after one step, with that step's covering rectangles
    drawn as gray dashed outlines and the newly added modules highlighted.

    Returns:
        ``(frame_name, svg_text)`` pairs, one per recorded step.
    """
    frames: list[tuple[str, str]] = []
    for step in trace.steps:
        if step.snapshot is None:
            continue
        placements = {p.name: p for p in step.snapshot}
        svg = render_svg(placements, chip, scale=scale)
        overlays: list[str] = []
        margin = 10.0

        def sx(x: float) -> float:
            return margin + x * scale

        def sy(y: float) -> float:
            return margin + (chip.h - y) * scale

        for obstacle in step.snapshot_obstacles or ():
            overlays.append(
                f'<rect x="{sx(obstacle.x):.1f}" y="{sy(obstacle.y2):.1f}" '
                f'width="{obstacle.w * scale:.1f}" '
                f'height="{obstacle.h * scale:.1f}" fill="none" '
                'stroke="#555" stroke-width="1.2" stroke-dasharray="5,3"/>')
        for name in step.group:
            if name in placements:
                r = placements[name].rect
                overlays.append(
                    f'<rect x="{sx(r.x):.1f}" y="{sy(r.y2):.1f}" '
                    f'width="{r.w * scale:.1f}" height="{r.h * scale:.1f}" '
                    'fill="none" stroke="#d62728" stroke-width="2.0"/>')
        svg = svg.replace("</svg>", "\n".join(overlays) + "\n</svg>")
        frames.append((f"step{step.index:02d}", svg))
    return frames


def render_ascii(placements: Mapping[str, Placement], chip: Rect, *,
                 columns: int = 72) -> str:
    """Render a floorplan as an ASCII raster (terminal Figure 5).

    Each module fills its footprint with a distinct letter; ``.`` is empty
    chip area.
    """
    if chip.w <= 0 or chip.h <= 0:
        return "(empty chip)"
    rows = max(4, round(columns * (chip.h / chip.w) * 0.5))
    grid = [["." for _ in range(columns)] for _ in range(rows)]
    symbols = "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789"
    legend: list[str] = []

    for index, (name, p) in enumerate(sorted(placements.items())):
        symbol = symbols[index % len(symbols)]
        legend.append(f"{symbol}={name}")
        r = p.rect
        c1 = int(r.x / chip.w * columns)
        c2 = max(c1 + 1, int(r.x2 / chip.w * columns))
        r1 = int(r.y / chip.h * rows)
        r2 = max(r1 + 1, int(r.y2 / chip.h * rows))
        for row in range(r1, min(r2, rows)):
            for col in range(c1, min(c2, columns)):
                grid[row][col] = symbol

    lines = ["".join(row) for row in reversed(grid)]
    lines.append("")
    for start in range(0, len(legend), 8):
        lines.append("  ".join(legend[start:start + 8]))
    return "\n".join(lines)
