"""Process-parallel execution of independent work items.

The paper's outer loops — sweeping candidate chip widths, benchmarking
independent instances — are embarrassingly parallel: each item is a full
MILP chain with no shared state.  :func:`parallel_map` fans such items out
over a :class:`~concurrent.futures.ProcessPoolExecutor` while keeping the
semantics of the serial path:

* **deterministic ordering** — results always come back in item order,
  regardless of which worker finished first;
* **serial fallback** — one worker (or one item) bypasses the pool
  entirely, and a pool that cannot start (restricted containers without
  POSIX semaphores, for example) degrades to the serial path instead of
  crashing;
* **worker-count config** — an explicit argument wins, then the
  ``REPRO_WORKERS`` environment variable, then the CPU count.

Functions and items must be picklable: pass module-level callables (or
:func:`functools.partial` of them) and plain-data arguments.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Iterable, Sequence, TypeVar

T = TypeVar("T")
R = TypeVar("R")

#: Environment variable overriding the default worker count.
WORKERS_ENV = "REPRO_WORKERS"


def resolve_workers(workers: int | None = None) -> int:
    """The effective worker count.

    Args:
        workers: explicit request; ``None``/``0`` defer to the
            ``REPRO_WORKERS`` environment variable, then the CPU count.
            Negative values raise.

    Returns:
        An integer >= 1.
    """
    if workers is not None and workers < 0:
        raise ValueError("workers must be >= 0")
    if workers:
        return workers
    env = os.environ.get(WORKERS_ENV, "").strip()
    if env:
        try:
            parsed = int(env)
        except ValueError:
            raise ValueError(
                f"{WORKERS_ENV} must be an integer, got {env!r}") from None
        if parsed >= 1:
            return parsed
    return os.cpu_count() or 1


def parallel_map(fn: Callable[[T], R], items: Iterable[T], *,
                 workers: int | None = None) -> list[R]:
    """Apply ``fn`` to every item, possibly across processes.

    Args:
        fn: a picklable callable (module-level function or a
            :func:`functools.partial` of one).
        items: the work items, consumed eagerly.
        workers: worker count (see :func:`resolve_workers`); 1 runs serially
            in-process.

    Returns:
        ``[fn(item) for item in items]`` — results in item order.  The first
        worker exception is re-raised.
    """
    work: Sequence[T] = list(items)
    n_workers = min(resolve_workers(workers), len(work))
    if n_workers <= 1 or len(work) <= 1:
        return [fn(item) for item in work]
    chunksize = max(1, len(work) // (n_workers * 4))
    try:
        with ProcessPoolExecutor(max_workers=n_workers) as pool:
            return list(pool.map(fn, work, chunksize=chunksize))
    except (BrokenProcessPool, PermissionError, OSError):
        # A pool that cannot start or dies wholesale (sandboxed containers,
        # fork restrictions) must not take the computation with it.
        return [fn(item) for item in work]
