"""Seeded random benchmark generation.

Series 1 of the paper evaluates scaling on "problems with 15, 20, and 25
modules [that] were randomly generated".  This module reproduces that
workload class: seeded, deterministic random instances with an MCNC-like
spread of module sizes, aspect ratios, and net degrees.

Pin counts are not independent random numbers: as in the YAL benchmarks,
every net endpoint is a pin, so each module's pins are its incident nets
distributed over its four sides.  This correlation is what makes the
section-3.2 envelopes informative — highly connected modules reserve more
routing space.
"""

from __future__ import annotations

import math
import random

from repro.netlist.module import Module, PinCounts
from repro.netlist.net import Net
from repro.netlist.netlist import Netlist

_SIDES = ("left", "right", "bottom", "top")


def random_netlist(n_modules: int, seed: int, *, total_area: float | None = None,
                   flexible_fraction: float = 0.0,
                   nets_per_module: float = 3.7,
                   max_net_degree: int = 5,
                   critical_fraction: float = 0.05,
                   name: str | None = None) -> Netlist:
    """Generate a deterministic random floorplanning instance.

    Module areas follow a lognormal distribution (matching the wide size
    spread of the MCNC blocks), rescaled so they sum to ``total_area``.
    Aspect ratios are drawn in [1, 3] with random orientation.  Net count is
    ``round(nets_per_module * n_modules)`` (ami33 has 123 nets over 33
    modules, i.e. ~3.7), with degrees in [2, max_net_degree] skewed toward
    two-pin nets.  Every net endpoint becomes a pin on a random side of its
    module, so pin counts track connectivity.

    Args:
        n_modules: number of modules.
        seed: RNG seed; identical seeds give identical instances.
        total_area: target sum of module areas (default ``349.09 * n``,
            ami33's per-module average of 11520/33).
        flexible_fraction: fraction of modules generated as flexible
            (fixed area, aspect in [0.5, 2]).
        nets_per_module: net count per module.
        max_net_degree: largest net degree.
        critical_fraction: fraction of nets marked timing-critical.
        name: netlist name (default ``random<n>_s<seed>``).

    Returns:
        The generated :class:`~repro.netlist.netlist.Netlist`.
    """
    if n_modules < 2:
        raise ValueError("need at least two modules")
    rng = random.Random(seed)
    if total_area is None:
        total_area = 11520.0 / 33.0 * n_modules

    # -- module areas: lognormal, rescaled to the exact total ------------------
    raw_areas = [rng.lognormvariate(0.0, 0.8) for _ in range(n_modules)]
    scale = total_area / sum(raw_areas)
    areas = [a * scale for a in raw_areas]
    names = [f"m{i:02d}" for i in range(n_modules)]

    nets = _random_nets(rng, names, round(nets_per_module * n_modules),
                        max_net_degree, critical_fraction)
    pin_sides = _pins_from_nets(rng, names, nets)

    n_flexible = round(flexible_fraction * n_modules)
    flexible_ids = set(rng.sample(range(n_modules), n_flexible))

    modules: list[Module] = []
    for i, (mod_name, area) in enumerate(zip(names, areas)):
        pins = PinCounts(**pin_sides[mod_name])
        if i in flexible_ids:
            modules.append(Module.flexible_area(
                mod_name, area, aspect_low=0.5, aspect_high=2.0, pins=pins))
        else:
            aspect = rng.uniform(1.0, 3.0)
            if rng.random() < 0.5:
                aspect = 1.0 / aspect
            width = math.sqrt(area * aspect)
            height = area / width
            modules.append(Module.rigid(mod_name, width, height, pins=pins))

    return Netlist(modules, nets, name=name or f"random{n_modules}_s{seed}")


def _pins_from_nets(rng: random.Random, names: list[str],
                    nets: list[Net]) -> dict[str, dict[str, int]]:
    """One pin per net endpoint, on a random side of its module (at least
    one pin per side stays plausible: modules with no nets get one pin)."""
    sides: dict[str, dict[str, int]] = {
        n: dict.fromkeys(_SIDES, 0) for n in names}
    for net in nets:
        for module_name in net.modules:
            side = rng.choice(_SIDES)
            sides[module_name][side] += 1
    for n in names:
        if sum(sides[n].values()) == 0:
            sides[n][rng.choice(_SIDES)] = 1
    return sides


def _random_nets(rng: random.Random, names: list[str], n_nets: int,
                 max_degree: int, critical_fraction: float) -> list[Net]:
    """Random nets with degree skewed toward 2 and guaranteed coverage.

    The first pass chains all modules so no module is disconnected; the rest
    are uniform random subsets.
    """
    nets: list[Net] = []
    order = list(names)
    rng.shuffle(order)
    for i in range(len(order) - 1):
        if len(nets) >= n_nets:
            break
        nets.append(Net(f"n{len(nets):03d}", (order[i], order[i + 1])))
    while len(nets) < n_nets:
        degree_weights = [4.0 / (d * d) for d in range(2, max_degree + 1)]
        degree = rng.choices(range(2, max_degree + 1), weights=degree_weights)[0]
        endpoints = tuple(rng.sample(names, min(degree, len(names))))
        nets.append(Net(f"n{len(nets):03d}", endpoints))
    n_critical = round(critical_fraction * len(nets))
    for idx in rng.sample(range(len(nets)), n_critical):
        n = nets[idx]
        nets[idx] = Net(n.name, n.modules, weight=n.weight,
                        criticality=rng.uniform(0.5, 1.0))
    return nets


def series1_instance(n_modules: int, seed: int = 1990) -> Netlist:
    """A Series-1 instance: the paper's randomly generated 15/20/25-module
    problems (all rigid modules, chip-area objective)."""
    return random_netlist(n_modules, seed=seed + n_modules,
                          flexible_fraction=0.0,
                          name=f"series1_{n_modules}")
