"""Circuit model substrate: modules, nets, netlists, benchmark I/O.

The paper's input is a set of rigid and flexible modules plus a netlist from
which pairwise common-net counts ``c_ij`` are derived (section 2.2).  This
subpackage models those inputs, parses/writes the MCNC YAL benchmark format,
generates the seeded random instances of Series 1, and embeds the documented
ami33-like substitute instance.
"""

from repro.netlist.module import Module, PinCounts, Side
from repro.netlist.net import Net
from repro.netlist.netlist import Netlist
from repro.netlist.generators import random_netlist, series1_instance
from repro.netlist.mcnc import ami33_like, apte_like, xerox_like, hp_like
from repro.netlist.yal import parse_yal, write_yal
from repro.netlist.gsrc import parse_gsrc, write_gsrc

__all__ = [
    "parse_gsrc",
    "write_gsrc",
    "Module",
    "PinCounts",
    "Side",
    "Net",
    "Netlist",
    "random_netlist",
    "series1_instance",
    "ami33_like",
    "apte_like",
    "xerox_like",
    "hp_like",
    "parse_yal",
    "write_yal",
]
