"""The netlist container: modules + nets + derived connectivity.

This is the floorplanner's input object.  It validates referential integrity
(every net endpoint names a module), exposes the pairwise common-net counts
``c_ij`` of section 2.2, and provides the connectivity queries the
module-selection strategies (section 3, step 5) rely on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

from repro.netlist.module import Module
from repro.netlist.net import Net


class Netlist:
    """An immutable circuit: named modules and the nets connecting them."""

    def __init__(self, modules: Iterable[Module], nets: Iterable[Net] = (),
                 name: str = "netlist") -> None:
        self.name = name
        self._modules: dict[str, Module] = {}
        for m in modules:
            if m.name in self._modules:
                raise ValueError(f"duplicate module name {m.name!r}")
            self._modules[m.name] = m
        self._nets: dict[str, Net] = {}
        for n in nets:
            if n.name in self._nets:
                raise ValueError(f"duplicate net name {n.name!r}")
            missing = [x for x in n.modules if x not in self._modules]
            if missing:
                raise ValueError(f"net {n.name!r} references unknown modules {missing}")
            self._nets[n.name] = n
        self._common_nets: dict[tuple[str, str], int] | None = None

    # -- access -------------------------------------------------------------------

    @property
    def modules(self) -> tuple[Module, ...]:
        """All modules, in insertion order."""
        return tuple(self._modules.values())

    @property
    def nets(self) -> tuple[Net, ...]:
        """All nets, in insertion order."""
        return tuple(self._nets.values())

    @property
    def module_names(self) -> tuple[str, ...]:
        """Module names, in insertion order."""
        return tuple(self._modules)

    def module(self, name: str) -> Module:
        """Look up a module by name."""
        return self._modules[name]

    def net(self, name: str) -> Net:
        """Look up a net by name."""
        return self._nets[name]

    def __len__(self) -> int:
        return len(self._modules)

    def __contains__(self, name: str) -> bool:
        return name in self._modules

    # -- derived connectivity -------------------------------------------------------

    def common_net_counts(self) -> Mapping[tuple[str, str], int]:
        """The ``c_ij`` of section 2.2: for each unordered module pair (keyed
        by the sorted name pair), the number of nets incident to both.

        Pairs with zero common nets are absent from the mapping.
        """
        if self._common_nets is None:
            counts: dict[tuple[str, str], int] = {}
            for n in self._nets.values():
                for pair in n.pairs():
                    counts[pair] = counts.get(pair, 0) + 1
            self._common_nets = counts
        return self._common_nets

    def common_nets(self, a: str, b: str) -> int:
        """``c_ab``: number of nets shared by modules ``a`` and ``b``."""
        key = (a, b) if a <= b else (b, a)
        return self.common_net_counts().get(key, 0)

    def connectivity_to_set(self, candidate: str, placed: Iterable[str]) -> int:
        """Total common-net count between ``candidate`` and a placed set —
        the attraction measure of the augmentation's group selection."""
        return sum(self.common_nets(candidate, p) for p in placed)

    def nets_of(self, module_name: str) -> list[Net]:
        """All nets incident to ``module_name``."""
        return [n for n in self._nets.values() if n.connects(module_name)]

    def degree(self, module_name: str) -> int:
        """Number of nets incident to ``module_name``."""
        return len(self.nets_of(module_name))

    # -- statistics --------------------------------------------------------------

    @property
    def total_module_area(self) -> float:
        """Sum of module areas (the paper reports 11520 for ami33)."""
        return sum(m.area for m in self._modules.values())

    @property
    def n_flexible(self) -> int:
        """Number of flexible modules."""
        return sum(1 for m in self._modules.values() if m.flexible)

    @property
    def n_rigid(self) -> int:
        """Number of rigid modules."""
        return len(self._modules) - self.n_flexible

    def stats(self) -> "NetlistStats":
        """Summary statistics for reports and experiment logs."""
        degrees = [n.degree for n in self._nets.values()]
        return NetlistStats(
            name=self.name,
            n_modules=len(self._modules),
            n_rigid=self.n_rigid,
            n_flexible=self.n_flexible,
            n_nets=len(self._nets),
            total_area=self.total_module_area,
            mean_net_degree=(sum(degrees) / len(degrees)) if degrees else 0.0,
            max_net_degree=max(degrees, default=0),
        )

    def restricted_to(self, names: Iterable[str], name: str | None = None) -> "Netlist":
        """The sub-netlist induced by ``names`` (nets with fewer than two
        surviving endpoints are dropped)."""
        keep = set(names)
        missing = keep - set(self._modules)
        if missing:
            raise ValueError(f"unknown modules {sorted(missing)}")
        modules = [m for m in self._modules.values() if m.name in keep]
        nets = []
        for n in self._nets.values():
            endpoints = tuple(x for x in n.modules if x in keep)
            if len(endpoints) >= 2:
                nets.append(Net(n.name, endpoints, weight=n.weight,
                                criticality=n.criticality))
        return Netlist(modules, nets, name=name or f"{self.name}:sub")


@dataclass(frozen=True)
class NetlistStats:
    """Summary statistics of a netlist."""

    name: str
    n_modules: int
    n_rigid: int
    n_flexible: int
    n_nets: int
    total_area: float
    mean_net_degree: float
    max_net_degree: int
