"""GSRC floorplanning benchmark format (.blocks / .nets).

The MCNC floorplanning benchmarks (ami33, ami49, apte, ...) circulate today
in the GSRC format: a ``.blocks`` file listing hard blocks (corner polygons)
and soft blocks (area + aspect-ratio range), and a ``.nets`` file listing
nets as degree-prefixed pin lists.  Supporting it means the real paper
benchmarks — and the larger GSRC n100/n200/n300 suites — drop straight into
the pipeline.

Supported subset (what the published files use)::

    # .blocks
    NumSoftRectangularBlocks : 3
    NumHardRectilinearBlocks : 2
    NumTerminals : 4
    bk1 softrectangular 1000 0.5 2.0
    bk2 hardrectilinear 4 (0,0) (0,10) (20,10) (20,0)
    p1 terminal

    # .nets
    NumNets : 2
    NumPins : 5
    NetDegree : 3
    bk1
    bk2
    p1
    NetDegree : 2
    bk1
    bk2

Terminals (I/O pads) have no dimensions; they are skipped by default or
turned into 1x1 fixed blocks with ``keep_terminals=True``.
"""

from __future__ import annotations

import re

from repro.netlist.module import Module
from repro.netlist.net import Net
from repro.netlist.netlist import Netlist

_COUNT_RE = re.compile(r"^\s*(\w+)\s*:\s*(\d+)\s*$")
_POINT_RE = re.compile(r"\(\s*([-\d.eE+]+)\s*,\s*([-\d.eE+]+)\s*\)")


def parse_gsrc(blocks_text: str, nets_text: str = "", *,
               name: str = "gsrc", keep_terminals: bool = False) -> Netlist:
    """Parse GSRC ``.blocks`` (+ optional ``.nets``) text into a netlist.

    Args:
        blocks_text: contents of the ``.blocks`` file.
        nets_text: contents of the ``.nets`` file (empty = no nets).
        name: netlist name.
        keep_terminals: represent terminals as 1x1 non-rotatable blocks
            instead of dropping them (and the nets' references to them).

    Returns:
        The parsed :class:`~repro.netlist.netlist.Netlist`.

    Raises:
        ValueError: on malformed block or net statements.
    """
    modules: list[Module] = []
    terminal_names: set[str] = set()

    for raw in blocks_text.splitlines():
        line = raw.split("#")[0].strip()
        if not line or line.upper().startswith("UCSC") \
                or _COUNT_RE.match(line):
            continue
        tokens = line.split()
        block_name = tokens[0]
        if len(tokens) < 2:
            raise ValueError(f"malformed block line: {raw!r}")
        kind = tokens[1].lower()
        if kind == "terminal":
            terminal_names.add(block_name)
            if keep_terminals:
                modules.append(Module.rigid(block_name, 1.0, 1.0,
                                            rotatable=False))
        elif kind == "softrectangular":
            if len(tokens) != 5:
                raise ValueError(f"malformed soft block: {raw!r}")
            area = float(tokens[2])
            aspect_low = float(tokens[3])
            aspect_high = float(tokens[4])
            modules.append(Module.flexible_area(
                block_name, area, aspect_low=aspect_low,
                aspect_high=aspect_high))
        elif kind in ("hardrectilinear", "hardrectangular"):
            points = _POINT_RE.findall(line)
            if len(points) < 3:
                raise ValueError(f"hard block without corner list: {raw!r}")
            xs = [float(p[0]) for p in points]
            ys = [float(p[1]) for p in points]
            width = max(xs) - min(xs)
            height = max(ys) - min(ys)
            modules.append(Module.rigid(block_name, width, height))
        else:
            raise ValueError(f"unknown block kind {kind!r} in {raw!r}")

    nets = _parse_nets(nets_text, {m.name for m in modules}, terminal_names,
                       keep_terminals)
    return Netlist(modules, nets, name=name)


def _parse_nets(nets_text: str, known: set[str], terminals: set[str],
                keep_terminals: bool) -> list[Net]:
    nets: list[Net] = []
    pending_degree = 0
    pins: list[str] = []
    index = 0

    def flush() -> None:
        nonlocal pins, index
        endpoints = tuple(dict.fromkeys(
            p for p in pins
            if p in known or (keep_terminals and p in terminals)))
        if len(endpoints) >= 2:
            nets.append(Net(f"net{index}", endpoints))
        pins = []
        index += 1

    for raw in nets_text.splitlines():
        line = raw.split("#")[0].strip()
        if not line:
            continue
        count = _COUNT_RE.match(line)
        if count:
            key, value = count.group(1).lower(), int(count.group(2))
            if key == "netdegree":
                if pending_degree:
                    flush()
                pending_degree = value
            continue
        if pending_degree:
            # pin lines may carry a %offset suffix in some files
            pins.append(line.split()[0])
            if len(pins) == pending_degree:
                flush()
                pending_degree = 0
    if pins:
        flush()
    return nets


def write_gsrc(netlist: Netlist) -> tuple[str, str]:
    """Serialize a netlist to GSRC ``(.blocks, .nets)`` text."""
    soft = [m for m in netlist.modules if m.flexible]
    hard = [m for m in netlist.modules if not m.flexible]
    blocks: list[str] = [
        "UCSC blocks 1.0", "",
        f"NumSoftRectangularBlocks : {len(soft)}",
        f"NumHardRectilinearBlocks : {len(hard)}",
        "NumTerminals : 0", "",
    ]
    for m in soft:
        blocks.append(f"{m.name} softrectangular {m.area:g} "
                      f"{m.aspect_low:g} {m.aspect_high:g}")
    for m in hard:
        w, h = m.width, m.height
        blocks.append(f"{m.name} hardrectilinear 4 "
                      f"(0, 0) (0, {h:g}) ({w:g}, {h:g}) ({w:g}, 0)")

    total_pins = sum(n.degree for n in netlist.nets)
    nets: list[str] = [
        "UCSC nets 1.0", "",
        f"NumNets : {len(netlist.nets)}",
        f"NumPins : {total_pins}", "",
    ]
    for n in netlist.nets:
        nets.append(f"NetDegree : {n.degree}")
        nets.extend(n.modules)
    return "\n".join(blocks) + "\n", "\n".join(nets) + "\n"
