"""Nets: hyperedges over modules.

The connectivity input of section 2.2 is a netlist: for each module, the set
of nets incident to it.  From it the formulation derives pairwise common-net
counts ``c_ij``; the router additionally uses per-net weights and
criticalities (timing-critical nets are routed first, following [YOU89]).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Net:
    """A net connecting two or more modules.

    Attributes:
        name: unique net identifier.
        modules: names of connected modules (order-irrelevant; duplicates are
            collapsed).
        weight: objective weight of this net's wirelength contribution.
        criticality: routing priority; nets with higher criticality are routed
            first (0 = non-critical).
        max_length: optional hard bound on the net's placement-stage length
            (the paper's "additional constraints on the length of critical
            nets"); enforced as a constraint by the MILP formulation.
    """

    name: str
    modules: tuple[str, ...]
    weight: float = 1.0
    criticality: float = 0.0
    max_length: float | None = None

    def __post_init__(self) -> None:
        deduped = tuple(dict.fromkeys(self.modules))
        object.__setattr__(self, "modules", deduped)
        if len(self.modules) < 2:
            raise ValueError(f"net {self.name}: needs at least two distinct modules")
        if self.weight < 0:
            raise ValueError(f"net {self.name}: negative weight")
        if self.max_length is not None and self.max_length <= 0:
            raise ValueError(f"net {self.name}: max_length must be positive")

    @property
    def degree(self) -> int:
        """Number of distinct modules on the net."""
        return len(self.modules)

    @property
    def is_critical(self) -> bool:
        """True when the net carries a timing criticality."""
        return self.criticality > 0

    def connects(self, module_name: str) -> bool:
        """True when ``module_name`` is on this net."""
        return module_name in self.modules

    def pairs(self) -> list[tuple[str, str]]:
        """All unordered module pairs on the net (clique model), each pair in
        sorted order."""
        mods = sorted(self.modules)
        return [
            (mods[i], mods[j])
            for i in range(len(mods))
            for j in range(i + 1, len(mods))
        ]
