"""YAL benchmark format reader/writer.

YAL is the netlist format of the MCNC Physical Design Workshop benchmarks
(ami33, apte, xerox, hp, ...), the suite the paper evaluates on.  This module
implements the subset those files use:

* ``MODULE <name>; ... ENDMODULE;`` blocks,
* ``TYPE GENERAL | STANDARD | PAD | PARENT;``,
* ``DIMENSIONS x1 y1 x2 y2 ...;`` — a rectilinear outline; we take the
  bounding box (the benchmark blocks are rectangles),
* ``IOLIST; <pin> <side> <pos> [<width> [<layer>]]; ... ENDIOLIST;`` — pins
  with side letters ``L R B T`` (counted per side for envelopes),
* ``NETWORK; <instance> <module> <signal> ...; ENDNETWORK;`` in the PARENT
  module — signals shared by several instances become nets.

The parser is lenient about whitespace/newlines and treats ``;`` as the sole
statement terminator, matching the benchmark files' loose formatting.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.netlist.module import Module, PinCounts
from repro.netlist.net import Net
from repro.netlist.netlist import Netlist

_SIDE_FIELDS = {"L": "left", "R": "right", "B": "bottom", "T": "top"}

#: Signals treated as power/ground/clock and excluded from the netlist, as is
#: conventional for these benchmarks.
GLOBAL_SIGNALS = {"GND", "VDD", "VSS", "VCC", "CK", "CLK", "PAD"}


@dataclass
class _RawModule:
    name: str
    mtype: str = "GENERAL"
    points: list[tuple[float, float]] = field(default_factory=list)
    pin_sides: dict[str, int] = field(default_factory=lambda: dict.fromkeys(
        ("left", "right", "bottom", "top"), 0))
    network: list[tuple[str, str, list[str]]] = field(default_factory=list)


def _statements(text: str) -> list[str]:
    """Split YAL text into ``;``-terminated statements, comments stripped."""
    text = re.sub(r"/\*.*?\*/", " ", text, flags=re.DOTALL)
    text = re.sub(r"(?m)#.*$", " ", text)
    return [s.strip() for s in text.split(";") if s.strip()]


def parse_yal(text: str, name: str = "yal",
              drop_globals: bool = True) -> Netlist:
    """Parse YAL text into a :class:`~repro.netlist.netlist.Netlist`.

    Args:
        text: YAL file contents.
        name: name for the resulting netlist.
        drop_globals: exclude power/ground/clock signals
            (:data:`GLOBAL_SIGNALS`) from net construction.

    Returns:
        A netlist of rigid modules; the PARENT module supplies the nets and is
        not itself a placeable module.
    """
    raw_modules: list[_RawModule] = []
    current: _RawModule | None = None
    mode: str | None = None  # None | "iolist" | "network"

    for stmt in _statements(text):
        tokens = stmt.split()
        head = tokens[0].upper()

        if head == "MODULE":
            if len(tokens) < 2:
                raise ValueError("MODULE statement without a name")
            current = _RawModule(name=tokens[1])
            raw_modules.append(current)
            mode = None
            continue
        if head == "ENDMODULE":
            current = None
            mode = None
            continue
        if current is None:
            raise ValueError(f"statement outside MODULE block: {stmt!r}")

        if head == "TYPE":
            current.mtype = tokens[1].upper()
        elif head == "DIMENSIONS":
            coords = [float(t) for t in tokens[1:]]
            if len(coords) % 2 != 0 or len(coords) < 6:
                raise ValueError(f"bad DIMENSIONS for module {current.name}")
            current.points = list(zip(coords[::2], coords[1::2]))
        elif head == "IOLIST":
            mode = "iolist"
        elif head == "ENDIOLIST":
            mode = None
        elif head == "NETWORK":
            mode = "network"
        elif head == "ENDNETWORK":
            mode = None
        elif mode == "iolist":
            # <pin-name> <side> <position> [...]; side may be a letter or
            # a coordinate pair in some files — only count lettered sides.
            if len(tokens) >= 2 and tokens[1].upper() in _SIDE_FIELDS:
                current.pin_sides[_SIDE_FIELDS[tokens[1].upper()]] += 1
        elif mode == "network":
            if len(tokens) >= 3:
                instance, module_ref, signals = tokens[0], tokens[1], tokens[2:]
                current.network.append((instance, module_ref, signals))
        else:
            raise ValueError(f"unrecognized YAL statement: {stmt!r}")

    return _assemble(raw_modules, name, drop_globals)


def _assemble(raw_modules: list[_RawModule], name: str,
              drop_globals: bool) -> Netlist:
    parents = [m for m in raw_modules if m.mtype == "PARENT"]
    leaves = [m for m in raw_modules if m.mtype != "PARENT"]

    defs: dict[str, _RawModule] = {m.name: m for m in leaves}
    modules: list[Module] = []
    instance_of: dict[str, str] = {}

    if parents:
        # Instances of the parent's NETWORK are the placeable modules.
        for instance, module_ref, _signals in parents[0].network:
            if module_ref not in defs:
                raise ValueError(f"instance {instance} references unknown module {module_ref}")
            raw = defs[module_ref]
            modules.append(_leaf_to_module(raw, rename=instance))
            instance_of[instance] = module_ref
    else:
        modules = [_leaf_to_module(m) for m in leaves]

    nets = _nets_from_network(parents[0].network, drop_globals) if parents else []
    return Netlist(modules, nets, name=name)


def _leaf_to_module(raw: _RawModule, rename: str | None = None) -> Module:
    if not raw.points:
        raise ValueError(f"module {raw.name} has no DIMENSIONS")
    xs = [p[0] for p in raw.points]
    ys = [p[1] for p in raw.points]
    width = max(xs) - min(xs)
    height = max(ys) - min(ys)
    pins = PinCounts(**raw.pin_sides)
    return Module.rigid(rename or raw.name, width, height, pins=pins)


def _nets_from_network(network: list[tuple[str, str, list[str]]],
                       drop_globals: bool) -> list[Net]:
    on_signal: dict[str, list[str]] = {}
    for instance, _module_ref, signals in network:
        for sig in signals:
            if drop_globals and sig.upper() in GLOBAL_SIGNALS:
                continue
            on_signal.setdefault(sig, []).append(instance)
    nets = []
    for sig, instances in on_signal.items():
        endpoints = tuple(dict.fromkeys(instances))
        if len(endpoints) >= 2:
            nets.append(Net(sig, endpoints))
    return nets


def write_yal(netlist: Netlist) -> str:
    """Serialize a netlist to YAL text (the subset :func:`parse_yal` reads).

    Flexible modules are emitted at their nominal dimensions with a comment
    noting the aspect bounds (YAL has no native soft-block syntax).
    """
    lines: list[str] = []
    for m in netlist.modules:
        lines.append(f"MODULE {m.name};")
        lines.append("TYPE GENERAL;")
        if m.flexible:
            lines.append(f"/* flexible: area={m.area:g} "
                         f"aspect=[{m.aspect_low:g},{m.aspect_high:g}] */")
        w, h = m.width, m.height
        lines.append(f"DIMENSIONS 0 0 {w:g} 0 {w:g} {h:g} 0 {h:g};")
        lines.append("IOLIST;")
        side_letters = {"left": "L", "right": "R", "bottom": "B", "top": "T"}
        for side, letter in side_letters.items():
            for k in range(getattr(m.pins, side)):
                lines.append(f"P_{m.name}_{letter}{k} {letter} 0;")
        lines.append("ENDIOLIST;")
        lines.append("ENDMODULE;")
        lines.append("")

    lines.append(f"MODULE {netlist.name}_parent;")
    lines.append("TYPE PARENT;")
    lines.append("NETWORK;")
    signals_of: dict[str, list[str]] = {m.name: [] for m in netlist.modules}
    for n in netlist.nets:
        for mod in n.modules:
            signals_of[mod].append(n.name)
    for m in netlist.modules:
        sigs = " ".join(signals_of[m.name])
        lines.append(f"{m.name} {m.name} {sigs};".rstrip())
    lines.append("ENDNETWORK;")
    lines.append("ENDMODULE;")
    return "\n".join(lines) + "\n"
