"""Modules: rigid and flexible rectangular blocks.

Section 2.2 of the paper: the input is ``K = K_r U K_f`` modules.  A *rigid*
module has given width and height (90-degree rotation allowed); a *flexible*
module has a fixed area ``S_i = w_i h_i`` and aspect-ratio bounds
``b_i <= w_i / h_i <= a_i``.  Each module additionally carries per-side pin
counts used for the routing envelopes of section 3.2.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from enum import Enum

from repro.geometry.rect import Rect


class Side(str, Enum):
    """A module side, in the chip coordinate frame."""

    LEFT = "left"
    RIGHT = "right"
    BOTTOM = "bottom"
    TOP = "top"


@dataclass(frozen=True)
class PinCounts:
    """Number of pins on each side of a module.

    The paper replaces exact pin positions by one *generalized pin* per side
    and sizes the routing envelope of each side proportionally to its pin
    count (section 3.2).
    """

    left: int = 0
    right: int = 0
    bottom: int = 0
    top: int = 0

    def __post_init__(self) -> None:
        for side in ("left", "right", "bottom", "top"):
            if getattr(self, side) < 0:
                raise ValueError(f"negative pin count on side {side}")

    @property
    def total(self) -> int:
        """Total pin count over all four sides."""
        return self.left + self.right + self.bottom + self.top

    def on(self, side: Side) -> int:
        """Pin count on ``side``."""
        return getattr(self, side.value)

    def rotated(self) -> "PinCounts":
        """Pin counts after a 90-degree counterclockwise rotation
        (left->bottom, bottom->right, right->top, top->left)."""
        return PinCounts(left=self.top, right=self.bottom,
                         bottom=self.left, top=self.right)


@dataclass(frozen=True)
class Module:
    """A rectangular module, rigid or flexible.

    Rigid modules are constructed with :meth:`rigid`; flexible ones with
    :meth:`flexible`.  For a flexible module, ``width``/``height`` hold the
    *nominal* dimensions (the square-ish shape of area ``area``); the MILP
    formulation varies the realized width within the aspect bounds.

    Attributes:
        name: unique module identifier.
        width: given width (rigid) or nominal width (flexible).
        height: given height (rigid) or nominal height (flexible).
        flexible: True when the module's shape may vary at fixed area.
        aspect_low: lower bound ``b`` on the aspect ratio ``w / h``.
        aspect_high: upper bound ``a`` on the aspect ratio ``w / h``.
        rotatable: whether 90-degree rotation is permitted (rigid modules).
        pins: per-side pin counts for routing envelopes.
    """

    name: str
    width: float
    height: float
    flexible: bool = False
    aspect_low: float = 1.0
    aspect_high: float = 1.0
    rotatable: bool = True
    pins: PinCounts = field(default_factory=PinCounts)

    def __post_init__(self) -> None:
        if self.width <= 0 or self.height <= 0:
            raise ValueError(f"module {self.name}: dimensions must be positive")
        if self.flexible:
            if self.aspect_low <= 0 or self.aspect_high < self.aspect_low:
                raise ValueError(
                    f"module {self.name}: aspect bounds must satisfy "
                    f"0 < low <= high, got [{self.aspect_low}, {self.aspect_high}]"
                )

    # -- constructors -----------------------------------------------------------

    @classmethod
    def rigid(cls, name: str, width: float, height: float, *,
              rotatable: bool = True, pins: PinCounts | None = None) -> "Module":
        """A rigid module with fixed dimensions."""
        return cls(name=name, width=width, height=height, flexible=False,
                   rotatable=rotatable, pins=pins or PinCounts())

    @classmethod
    def flexible_area(cls, name: str, area: float, *, aspect_low: float = 0.5,
                      aspect_high: float = 2.0,
                      pins: PinCounts | None = None) -> "Module":
        """A flexible module of fixed area with aspect-ratio bounds
        ``aspect_low <= w/h <= aspect_high``.

        The nominal shape realizes the geometric mean aspect ratio.
        """
        if area <= 0:
            raise ValueError(f"module {name}: area must be positive")
        nominal_aspect = math.sqrt(aspect_low * aspect_high)
        width = math.sqrt(area * nominal_aspect)
        height = area / width
        return cls(name=name, width=width, height=height, flexible=True,
                   aspect_low=aspect_low, aspect_high=aspect_high,
                   rotatable=False, pins=pins or PinCounts())

    # -- geometry -----------------------------------------------------------------

    @property
    def area(self) -> float:
        """Module area.  For flexible modules this is the invariant ``S_i``."""
        return self.width * self.height

    @property
    def width_min(self) -> float:
        """Smallest legal width.

        For flexible modules this follows from ``w/h >= b`` and ``wh = S``:
        ``w >= sqrt(S b)``.  For rigid modules it is the given width (rotation
        is modeled separately with the binary ``z_i``).
        """
        if not self.flexible:
            return self.width
        return math.sqrt(self.area * self.aspect_low)

    @property
    def width_max(self) -> float:
        """Largest legal width (``sqrt(S a)`` for flexible modules)."""
        if not self.flexible:
            return self.width
        return math.sqrt(self.area * self.aspect_high)

    def height_for_width(self, w: float) -> float:
        """Exact height at width ``w`` (``S / w`` for flexible modules)."""
        if not self.flexible:
            if not math.isclose(w, self.width, rel_tol=1e-9):
                raise ValueError(f"rigid module {self.name} has fixed width {self.width}")
            return self.height
        if not (self.width_min - 1e-9 <= w <= self.width_max + 1e-9):
            raise ValueError(
                f"module {self.name}: width {w} outside "
                f"[{self.width_min}, {self.width_max}]"
            )
        return self.area / w

    def placed(self, x: float, y: float, *, rotated: bool = False,
               width: float | None = None) -> Rect:
        """The rectangle this module occupies at position ``(x, y)``.

        Args:
            rotated: apply the 90-degree rotation (rigid modules only).
            width: realized width for flexible modules (defaults to nominal).
        """
        if self.flexible:
            w = self.width if width is None else width
            return Rect(x, y, w, self.height_for_width(w))
        if width is not None and not math.isclose(width, self.width, rel_tol=1e-9):
            raise ValueError(f"rigid module {self.name} cannot take width overrides")
        if rotated:
            return Rect(x, y, self.height, self.width)
        return Rect(x, y, self.width, self.height)

    def max_extent(self) -> float:
        """The largest dimension the module can present on either axis; used
        to build conservative big-M bounds."""
        if self.flexible:
            return max(self.width_max, self.area / self.width_min)
        return max(self.width, self.height)
