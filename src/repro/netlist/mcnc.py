"""MCNC-like benchmark instances (documented substitution).

The paper evaluates on **ami33** from the 1988 MCNC Workshop on Physical
Design.  The genuine benchmark files are not shipped with this repository;
instead, each ``*_like`` function builds a deterministic instance that
matches the published aggregate characteristics of its namesake:

* **ami33_like** — 33 rigid modules, total module area exactly **11520**
  (the figure the paper reports for ami33 in Series 2), lognormal size
  spread, 123 nets of degree 2-5.
* **apte_like / xerox_like / hp_like** — 9 / 10 / 11 modules, matching the
  module counts of the other small MCNC block benchmarks.

The substitution is behaviour-preserving for the paper's claims (scaling,
utilization, objective/ordering/envelope effects), which depend on the
instance's statistics rather than on the exact geometry; users with the real
YAL files can load them via :func:`repro.netlist.yal.parse_yal` and run the
identical pipeline.  See DESIGN.md section 2.
"""

from __future__ import annotations

import math

from repro.netlist.generators import random_netlist
from repro.netlist.netlist import Netlist

#: The total module area the paper reports for ami33 (Series 2).
AMI33_TOTAL_AREA = 11520.0


def ami33_like(seed: int = 33) -> Netlist:
    """The ami33 substitute: 33 rigid modules, total area 11520, 123 nets."""
    netlist = random_netlist(
        33, seed=seed, total_area=AMI33_TOTAL_AREA,
        nets_per_module=123.0 / 33.0, max_net_degree=5,
        name="ami33_like",
    )
    total = netlist.total_module_area
    if not math.isclose(total, AMI33_TOTAL_AREA, rel_tol=1e-9):
        raise AssertionError(f"ami33_like total area {total} != {AMI33_TOTAL_AREA}")
    return netlist


def apte_like(seed: int = 9) -> Netlist:
    """An apte-sized instance: 9 rigid modules."""
    return random_netlist(9, seed=seed, total_area=9 * 360.0,
                          nets_per_module=97.0 / 9.0, max_net_degree=4,
                          name="apte_like")


def xerox_like(seed: int = 10) -> Netlist:
    """A xerox-sized instance: 10 rigid modules."""
    return random_netlist(10, seed=seed, total_area=10 * 360.0,
                          nets_per_module=203.0 / 10.0, max_net_degree=5,
                          name="xerox_like")


def hp_like(seed: int = 11) -> Netlist:
    """An hp-sized instance: 11 rigid modules."""
    return random_netlist(11, seed=seed, total_area=11 * 360.0,
                          nets_per_module=83.0 / 11.0, max_net_degree=4,
                          name="hp_like")
