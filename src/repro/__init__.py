"""repro — an analytical MILP floorplanner.

A production-quality reproduction of Sutanthavibul, Shragowitz & Rosen,
*"An Analytical Approach to Floorplan Design and Optimization"* (DAC 1990):
mixed-integer-programming floorplanning with successive augmentation,
covering-rectangle reduction, flexible-module linearization, routing
envelopes, graph-based global routing, and LP channel-width adjustment.

Quickstart::

    from repro import ami33_like, FloorplanConfig, floorplan

    plan = floorplan(ami33_like(), FloorplanConfig(seed_size=6, group_size=4))
    print(plan.chip_area, plan.utilization)

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-versus-measured record.
"""

from repro.core import (
    Floorplan,
    FloorplanConfig,
    Floorplanner,
    Linearization,
    Objective,
    Ordering,
    Placement,
    derive_relations,
    floorplan,
    optimize_topology,
)
from repro.netlist import (
    Module,
    Net,
    Netlist,
    ami33_like,
    apte_like,
    hp_like,
    parse_yal,
    random_netlist,
    series1_instance,
    write_yal,
    xerox_like,
)
from repro.routing import (
    GlobalRouter,
    RouterMode,
    RoutingResult,
    Technology,
    adjust_floorplan,
    build_channel_graph,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # core
    "Floorplan",
    "FloorplanConfig",
    "Floorplanner",
    "Linearization",
    "Objective",
    "Ordering",
    "Placement",
    "derive_relations",
    "floorplan",
    "optimize_topology",
    # netlist
    "Module",
    "Net",
    "Netlist",
    "ami33_like",
    "apte_like",
    "hp_like",
    "parse_yal",
    "random_netlist",
    "series1_instance",
    "write_yal",
    "xerox_like",
    # routing
    "GlobalRouter",
    "RouterMode",
    "RoutingResult",
    "Technology",
    "adjust_floorplan",
    "build_channel_graph",
]
