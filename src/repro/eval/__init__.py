"""Experiment harness: metrics, the Series 1-3 drivers, and table reports."""

from repro.eval.metrics import (
    area_utilization,
    hpwl,
    routed_wirelength,
    total_module_area,
)
from repro.eval.experiments import (
    Series1Row,
    Series2Row,
    Series3Row,
    run_series1,
    run_series2,
    run_series3,
)
from repro.eval.report import format_table
from repro.eval.critical_chain import (
    CriticalChain,
    binding_relations,
    chain_report,
    critical_chain,
)
from repro.eval.scaling import LinearFit, fit_linear, growth_exponent

__all__ = [
    "CriticalChain",
    "binding_relations",
    "chain_report",
    "critical_chain",
    "LinearFit",
    "fit_linear",
    "growth_exponent",
    "area_utilization",
    "hpwl",
    "routed_wirelength",
    "total_module_area",
    "Series1Row",
    "Series2Row",
    "Series3Row",
    "run_series1",
    "run_series2",
    "run_series3",
    "format_table",
]
