"""Experiment drivers for the paper's three evaluation series.

Each driver returns typed rows mirroring the corresponding table's columns;
:mod:`repro.eval.report` renders them in the paper's layout.  The default
workloads are the documented MCNC substitutes (DESIGN.md section 2); any
:class:`~repro.netlist.netlist.Netlist` — including genuine YAL files loaded
via :func:`repro.netlist.yal.parse_yal` — can be passed instead.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Sequence

from repro.core.config import FloorplanConfig, Objective, Ordering
from repro.core.floorplanner import Floorplanner
from repro.eval.metrics import hpwl
from repro.netlist.generators import series1_instance
from repro.netlist.mcnc import ami33_like
from repro.netlist.netlist import Netlist
from repro.routing.flow import route_and_adjust
from repro.routing.router import RouterMode
from repro.routing.technology import Technology


# ---------------------------------------------------------------------------
# Series 1 — problem-size scaling (Table 1)
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Series1Row:
    """One row of Table 1."""

    n_modules: int
    chip_area: float
    execution_seconds: float
    utilization: float
    max_binaries: int
    n_steps: int


def run_series1(sizes: Sequence[int] = (15, 20, 25), *,
                include_ami33: bool = True,
                config: FloorplanConfig | None = None,
                seed: int = 1990) -> list[Series1Row]:
    """Table 1: floorplan random instances of growing size plus ami33.

    The claim under test: "execution time grows almost linearly with the
    problem size" because the per-step binary count stays bounded.
    """
    netlists = [series1_instance(n, seed=seed) for n in sizes]
    if include_ami33:
        netlists.append(ami33_like())
    rows: list[Series1Row] = []
    for netlist in netlists:
        cfg = config or FloorplanConfig()
        start = time.perf_counter()
        plan = Floorplanner(netlist, cfg).run()
        elapsed = time.perf_counter() - start
        rows.append(Series1Row(
            n_modules=len(netlist),
            chip_area=plan.chip_area,
            execution_seconds=elapsed,
            utilization=plan.utilization,
            max_binaries=plan.trace.max_binaries,
            n_steps=plan.trace.n_steps,
        ))
    return rows


# ---------------------------------------------------------------------------
# Series 2 — objectives x orderings, over-the-cell routing (Table 2)
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Series2Row:
    """One row of Table 2."""

    objective: str
    ordering: str
    chip_area: float
    utilization: float
    wirelength: float
    execution_seconds: float


def run_series2(netlist: Netlist | None = None, *,
                base_config: FloorplanConfig | None = None) -> list[Series2Row]:
    """Table 2: ami33 with over-the-cell routing.

    2 objectives (area; area + wirelength) x 2 orderings (random;
    connectivity-based linear ordering).  The claims under test: best
    utilization is high; the combined objective and connectivity ordering
    reduce wirelength.
    """
    netlist = netlist or ami33_like()
    rows: list[Series2Row] = []
    for objective in (Objective.AREA, Objective.AREA_WIRELENGTH):
        for ordering in (Ordering.RANDOM, Ordering.CONNECTIVITY):
            cfg = _copy_config(base_config)
            cfg.objective = objective
            cfg.ordering = ordering
            cfg.technology = Technology.over_the_cell()
            cfg.use_envelopes = False
            start = time.perf_counter()
            plan = Floorplanner(netlist, cfg).run()
            elapsed = time.perf_counter() - start
            rows.append(Series2Row(
                objective=objective.value,
                ordering=ordering.value,
                chip_area=plan.chip_area,
                utilization=plan.utilization,
                wirelength=hpwl(netlist, plan.placements),
                execution_seconds=elapsed,
            ))
    return rows


# ---------------------------------------------------------------------------
# Series 3 — routing-area provision x router, around-the-cell (Table 3)
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Series3Row:
    """One row of Table 3."""

    technique: str           # "no_envelopes" | "envelopes"
    router: str              # "shortest" | "weighted"
    chip_area: float         # final area including routing space
    wirelength: float        # routed wirelength
    utilization: float
    overflow: float


def run_series3(netlist: Netlist | None = None, *,
                base_config: FloorplanConfig | None = None) -> list[Series3Row]:
    """Table 3: ami33 with around-the-cell routing.

    2 area-provision techniques (floorplan adjustment without / with
    envelopes) x 2 routers (shortest path / weighted shortest path).  The
    claim under test: "the application of envelopes allows us to decrease
    the chip size".
    """
    netlist = netlist or ami33_like()
    technology = Technology.around_the_cell()
    rows: list[Series3Row] = []
    for use_envelopes in (False, True):
        cfg = _copy_config(base_config)
        cfg.use_envelopes = use_envelopes
        cfg.technology = technology
        plan = Floorplanner(netlist, cfg).run()
        for mode in (RouterMode.SHORTEST, RouterMode.WEIGHTED):
            routed = route_and_adjust(plan.placements, plan.chip, netlist,
                                      technology, mode=mode)
            rows.append(Series3Row(
                technique="envelopes" if use_envelopes else "no_envelopes",
                router=mode.value,
                chip_area=routed.chip_area,
                wirelength=routed.wirelength,
                utilization=routed.utilization(),
                overflow=routed.routing.total_overflow,
            ))
    return rows


def _copy_config(base: FloorplanConfig | None) -> FloorplanConfig:
    """A mutable copy of the base config (or fresh defaults)."""
    import copy

    return copy.deepcopy(base) if base is not None else FloorplanConfig()
