"""Floorplan quality metrics.

The paper's tables report chip area, area utilization, execution time, and
wire length; these helpers compute them from placements and routing results.
"""

from __future__ import annotations

from typing import Mapping

from repro.core.placement import Placement
from repro.geometry.rect import Rect
from repro.netlist.netlist import Netlist
from repro.routing.result import RoutingResult


def total_module_area(placements: Mapping[str, Placement]) -> float:
    """Sum of module-rectangle areas."""
    return sum(p.rect.area for p in placements.values())


def area_utilization(placements: Mapping[str, Placement], chip: Rect) -> float:
    """Module area over chip area (the paper's utilization columns)."""
    if chip.area <= 0:
        return 0.0
    return total_module_area(placements) / chip.area


def hpwl(netlist: Netlist, placements: Mapping[str, Placement]) -> float:
    """Weighted half-perimeter wirelength over module centers — the
    placement-stage wirelength estimate."""
    total = 0.0
    for net in netlist.nets:
        xs = [placements[m].rect.cx for m in net.modules]
        ys = [placements[m].rect.cy for m in net.modules]
        total += net.weight * ((max(xs) - min(xs)) + (max(ys) - min(ys)))
    return total


def routed_wirelength(routing: RoutingResult) -> float:
    """Wirelength "measured based on the shortest paths produced by the
    global router" (Series 3)."""
    return routing.total_wirelength
