"""Scaling analysis for Series 1.

The paper's central performance claim is that "execution time grows almost
linearly with the problem size".  These helpers fit and report that trend
from measured (size, time) points, so the Table-1 bench (and any user
experiment) can quantify the linearity instead of eyeballing it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np


@dataclass(frozen=True)
class LinearFit:
    """A least-squares line ``time = slope * size + intercept``.

    Attributes:
        slope: seconds per module.
        intercept: fixed overhead in seconds.
        r_squared: coefficient of determination of the linear model.
        residuals: per-point ``measured - predicted``.
    """

    slope: float
    intercept: float
    r_squared: float
    residuals: tuple[float, ...]

    def predict(self, size: float) -> float:
        """Predicted time at ``size``."""
        return self.slope * size + self.intercept

    def describe(self) -> str:
        """One-line human-readable summary."""
        return (f"time = {self.slope:.4f}s/module * n + {self.intercept:.4f}s"
                f"  (R^2 = {self.r_squared:.3f})")


def fit_linear(sizes: Sequence[float], times: Sequence[float]) -> LinearFit:
    """Least-squares linear fit of times against sizes.

    Raises:
        ValueError: with fewer than two points (no line to fit).
    """
    if len(sizes) != len(times):
        raise ValueError("sizes and times must have equal length")
    if len(sizes) < 2:
        raise ValueError("need at least two points to fit a line")
    x = np.asarray(sizes, dtype=float)
    y = np.asarray(times, dtype=float)
    slope, intercept = np.polyfit(x, y, 1)
    predicted = slope * x + intercept
    ss_res = float(np.sum((y - predicted) ** 2))
    ss_tot = float(np.sum((y - y.mean()) ** 2))
    r_squared = 1.0 - ss_res / ss_tot if ss_tot > 0 else 1.0
    return LinearFit(slope=float(slope), intercept=float(intercept),
                     r_squared=r_squared,
                     residuals=tuple(float(r) for r in (y - predicted)))


def growth_exponent(sizes: Sequence[float], times: Sequence[float]) -> float:
    """The power-law exponent ``p`` of ``time ~ size^p`` (log-log slope).

    Near 1.0 supports the linear-growth claim; a window-free exact MILP
    would show a much larger (super-polynomial) exponent.

    Raises:
        ValueError: on non-positive inputs or fewer than two points.
    """
    if len(sizes) < 2:
        raise ValueError("need at least two points")
    x = np.asarray(sizes, dtype=float)
    y = np.asarray(times, dtype=float)
    if (x <= 0).any() or (y <= 0).any():
        raise ValueError("sizes and times must be positive for a log-log fit")
    slope, _ = np.polyfit(np.log(x), np.log(y), 1)
    return float(slope)
