"""Critical chains: what limits the chip dimensions.

After compaction (the section-2.5 LP), some relations are *binding* — the
two modules touch (plus any required gap).  The binding relations form a
DAG per axis; the heaviest path through it is the **critical chain**: the
stack of modules whose summed extents equal the chip dimension.  Shrinking
any module off the chain cannot shrink the chip; the chain is where a
designer (or a soft-block resize) must act.

This is the floorplan analogue of static timing's critical path, derived
purely from geometry — no solver duals needed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import networkx as nx

from repro.core.placement import Placement
from repro.core.topology import Relation, derive_relations

#: Slack below which a relation counts as binding.
BINDING_EPS = 1e-6


@dataclass(frozen=True)
class CriticalChain:
    """One axis's critical chain.

    Attributes:
        axis: ``"x"`` (chip width) or ``"y"`` (chip height).
        modules: the chain members, in stacking order.
        extent: summed module extents along the axis (+ binding gaps) —
            equals the chip dimension when the floorplan is compacted.
        chip_extent: the chip's dimension on this axis.
    """

    axis: str
    modules: tuple[str, ...]
    extent: float
    chip_extent: float

    @property
    def is_tight(self) -> bool:
        """True when the chain's extent reaches the chip dimension (the
        floorplan is compacted along this axis)."""
        return self.extent >= self.chip_extent - 1e-4 * max(1.0, self.chip_extent)


def binding_relations(placements: Sequence[Placement],
                      relations: Sequence[Relation] | None = None,
                      eps: float = BINDING_EPS) -> list[Relation]:
    """Relations whose separation constraint is tight (modules touch, up to
    the relation's gap)."""
    if relations is None:
        relations = derive_relations(placements)
    by_name = {p.name: p for p in placements}
    tight: list[Relation] = []
    for rel in relations:
        a = by_name[rel.first].envelope
        b = by_name[rel.second].envelope
        slack = (b.x - a.x2 if rel.axis == "x" else b.y - a.y2) - rel.gap
        if slack <= eps:  # touching (or overlapping by solver noise)
            tight.append(rel)
    return tight


def critical_chain(placements: Sequence[Placement], axis: str = "y", *,
                   relations: Sequence[Relation] | None = None,
                   eps: float = BINDING_EPS) -> CriticalChain:
    """The heaviest binding chain along ``axis``.

    Builds a DAG of binding relations (edges point in the growth direction),
    adds a virtual source/sink for chip boundaries, and takes the
    longest path weighted by module extents and binding gaps.

    Raises:
        ValueError: for an unknown axis or empty placement set.
    """
    if axis not in ("x", "y"):
        raise ValueError(f"axis must be 'x' or 'y', got {axis!r}")
    placement_list = list(placements)
    if not placement_list:
        raise ValueError("critical_chain needs at least one placement")
    by_name = {p.name: p for p in placement_list}

    def extent(p: Placement) -> float:
        return p.envelope.w if axis == "x" else p.envelope.h

    def low_edge(p: Placement) -> float:
        return p.envelope.x if axis == "x" else p.envelope.y

    graph = nx.DiGraph()
    graph.add_node("source")
    graph.add_node("sink")
    for p in placement_list:
        graph.add_node(p.name)
        graph.add_edge(p.name, "sink", weight=0.0)
        if low_edge(p) <= eps:
            # resting on the chip boundary: the chain can start here
            graph.add_edge("source", p.name, weight=extent(p))
    for rel in binding_relations(placement_list, relations, eps=eps):
        if rel.axis != axis:
            continue
        first = by_name[rel.first]
        second = by_name[rel.second]
        # Guard against cycles from overlap noise: binding edges must make
        # forward progress along the axis.
        if low_edge(second) < low_edge(first) - eps:
            continue
        graph.add_edge(rel.first, rel.second,
                       weight=extent(second) + rel.gap)
    path = nx.dag_longest_path(graph, weight="weight")
    total = nx.dag_longest_path_length(graph, weight="weight")
    modules = tuple(n for n in path if n not in ("source", "sink"))
    chip_extent = max((p.envelope.x2 if axis == "x" else p.envelope.y2)
                      for p in placement_list)
    return CriticalChain(axis=axis, modules=modules, extent=total,
                         chip_extent=chip_extent)


def chain_report(placements: Sequence[Placement]) -> str:
    """Two-line report of the width and height critical chains."""
    lines = []
    for axis, label in (("x", "width"), ("y", "height")):
        chain = critical_chain(placements, axis)
        marker = "tight" if chain.is_tight else \
            f"slack {chain.chip_extent - chain.extent:.2f}"
        lines.append(f"{label} chain ({marker}): "
                     + " -> ".join(chain.modules)
                     + f"  [{chain.extent:.2f} / {chain.chip_extent:.2f}]")
    return "\n".join(lines)
