"""Experiment reporting: ASCII tables and solve-telemetry JSON.

:func:`format_table` renders dataclass rows (or any mapping sequence) in
the paper's plain table style so bench output reads like Tables 1-3.
:func:`telemetry_report` flattens a floorplan's per-step
:class:`~repro.milp.telemetry.SolveTelemetry` records into one JSON-safe
document — the machine-readable perf artifact the CI benchmark jobs upload
and ``repro-floorplan telemetry`` emits.
"""

from __future__ import annotations

import json
from dataclasses import asdict, is_dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Any, Mapping, Sequence

if TYPE_CHECKING:
    from repro.core.floorplanner import Floorplan


def format_table(rows: Sequence[Any], title: str = "",
                 floatfmt: str = ".1f") -> str:
    """Render rows as an aligned ASCII table.

    Args:
        rows: dataclass instances or mappings, all with the same keys.
        title: optional heading line.
        floatfmt: format spec applied to float cells.

    Returns:
        The formatted table text (empty string for no rows).
    """
    if not rows:
        return ""
    dicts: list[Mapping[str, Any]] = [
        asdict(r) if is_dataclass(r) else dict(r) for r in rows]
    headers = list(dicts[0])

    def cell(value: Any) -> str:
        if isinstance(value, bool):
            return "yes" if value else "no"
        if isinstance(value, float):
            return format(value, floatfmt)
        return str(value)

    table = [[cell(d[h]) for h in headers] for d in dicts]
    widths = [max(len(h), *(len(row[i]) for row in table))
              for i, h in enumerate(headers)]
    lines: list[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in table:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def telemetry_report(plan: "Floorplan") -> dict[str, Any]:
    """A JSON-safe per-step solve-telemetry document for ``plan``.

    The document carries the run-level outcome (instance, chip geometry,
    utilization, wall time, backend) plus one entry per augmentation step
    with the subproblem shape and, when the backend recorded it, the
    structured :class:`~repro.milp.telemetry.SolveTelemetry` (LP calls,
    nodes, incumbent trace, gap).
    """
    from repro.serialize import trace_to_dict

    trace = trace_to_dict(plan.trace)
    return {
        "version": 1,
        "instance": plan.netlist.name,
        "n_modules": len(plan.placements),
        "n_nets": len(plan.netlist.nets),
        "backend": plan.config.backend,
        "chip_width": plan.chip_width,
        "chip_height": plan.chip_height,
        "chip_area": plan.chip_area,
        "utilization": plan.utilization,
        "elapsed_seconds": plan.elapsed_seconds,
        "n_steps": plan.trace.n_steps,
        "max_binaries": plan.trace.max_binaries,
        "total_solve_seconds": plan.trace.total_solve_seconds,
        "total_nodes": plan.trace.total_nodes,
        "total_lp_calls": plan.trace.total_lp_calls,
        "cache_hits": plan.trace.cache_hits,
        "cache_misses": plan.trace.cache_misses,
        "steps": trace["steps"],
    }


def canonicalize_telemetry(doc: dict[str, Any]) -> dict[str, Any]:
    """A copy of a :func:`telemetry_report` document with all wall-clock
    fields zeroed.

    Runtime varies between machines and runs, but everything else in a
    telemetry document (step shapes, statuses, objectives, node and LP-call
    counts) is deterministic for a fixed seed and backend.  Zeroing the
    timings makes two runs of the same configuration byte-identical, so CI
    can diff the artifact to catch behavioral changes.

    Solve-cache provenance is stripped for the same reason: whether a solve
    was a hit or a miss depends on cache warmth, not on the configuration,
    and a hit serves the stored solve's telemetry — so once the provenance
    is nulled, a cold run and a warm run of the same configuration
    canonicalize identically.

    Frontier and batch counters are execution provenance too: the frontier
    store (vectorized arrays vs scalar objects, peak capacity, LP engine)
    and the :func:`~repro.milp.solvers.registry.solve_many` batch shape
    describe *how* a solve ran, not *what* it computed, so they are nulled
    to keep scalar/vectorized and batched/sequential runs byte-comparable.
    """
    out = json.loads(json.dumps(doc))
    out["elapsed_seconds"] = 0.0
    out["total_solve_seconds"] = 0.0
    out["cache_hits"] = 0
    out["cache_misses"] = 0
    for step in out.get("steps", []):
        step["solve_seconds"] = 0.0
        telemetry = step.get("telemetry")
        if telemetry:
            telemetry["wall_seconds"] = 0.0
            telemetry["incumbents"] = [
                [0.0, objective]
                for _seconds, objective in telemetry.get("incumbents", [])]
            telemetry["cache"] = None
            telemetry["frontier"] = None
            telemetry["batch"] = None
            # Removed (not nulled): goldens recorded before the formulation
            # axis existed have no such key, and the default-"bigm" pipeline
            # must keep canonicalizing byte-identically to them.
            telemetry.pop("formulation", None)
    return out


def write_telemetry_json(plan: "Floorplan", path: str | Path) -> None:
    """Write :func:`telemetry_report` output to ``path`` as JSON."""
    Path(path).write_text(json.dumps(telemetry_report(plan), indent=1) + "\n")
