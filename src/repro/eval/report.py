"""ASCII table rendering for experiment rows.

Renders dataclass rows (or any mapping sequence) in the paper's plain
table style so bench output reads like Tables 1-3.
"""

from __future__ import annotations

from dataclasses import asdict, is_dataclass
from typing import Any, Mapping, Sequence


def format_table(rows: Sequence[Any], title: str = "",
                 floatfmt: str = ".1f") -> str:
    """Render rows as an aligned ASCII table.

    Args:
        rows: dataclass instances or mappings, all with the same keys.
        title: optional heading line.
        floatfmt: format spec applied to float cells.

    Returns:
        The formatted table text (empty string for no rows).
    """
    if not rows:
        return ""
    dicts: list[Mapping[str, Any]] = [
        asdict(r) if is_dataclass(r) else dict(r) for r in rows]
    headers = list(dicts[0])

    def cell(value: Any) -> str:
        if isinstance(value, bool):
            return "yes" if value else "no"
        if isinstance(value, float):
            return format(value, floatfmt)
        return str(value)

    table = [[cell(d[h]) for h in headers] for d in dicts]
    widths = [max(len(h), *(len(row[i]) for row in table))
              for i, h in enumerate(headers)]
    lines: list[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in table:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
