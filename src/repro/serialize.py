"""JSON persistence for netlists and floorplans.

Experiments that take minutes shouldn't be rerun to re-examine a result:
these helpers serialize netlists and completed floorplans to plain JSON and
restore them, self-contained (a saved floorplan embeds its netlist and the
configuration that produced it).
"""

from __future__ import annotations

import json
import math
from typing import Any

from repro.core.augmentation import AugmentationStep, AugmentationTrace
from repro.core.config import FloorplanConfig
from repro.core.floorplanner import Floorplan
from repro.core.placement import Placement
from repro.geometry.rect import Rect
from repro.milp.expr import LinExpr, VarKind
from repro.milp.model import Constraint, Model, Sense
from repro.milp.telemetry import SolveTelemetry
from repro.netlist.module import Module, PinCounts
from repro.netlist.net import Net
from repro.netlist.netlist import Netlist
from repro.routing.technology import RoutingStyle, Technology

#: Format version stamped into every document.
FORMAT_VERSION = 1


# ---------------------------------------------------------------------------
# netlists
# ---------------------------------------------------------------------------

def netlist_to_dict(netlist: Netlist) -> dict[str, Any]:
    """A JSON-safe representation of a netlist."""
    return {
        "version": FORMAT_VERSION,
        "name": netlist.name,
        "modules": [
            {
                "name": m.name,
                "width": m.width,
                "height": m.height,
                "flexible": m.flexible,
                "aspect_low": m.aspect_low,
                "aspect_high": m.aspect_high,
                "rotatable": m.rotatable,
                "pins": {"left": m.pins.left, "right": m.pins.right,
                         "bottom": m.pins.bottom, "top": m.pins.top},
            }
            for m in netlist.modules
        ],
        "nets": [
            {
                "name": n.name,
                "modules": list(n.modules),
                "weight": n.weight,
                "criticality": n.criticality,
                "max_length": n.max_length,
            }
            for n in netlist.nets
        ],
    }


def netlist_from_dict(data: dict[str, Any]) -> Netlist:
    """Rebuild a netlist from :func:`netlist_to_dict` output."""
    modules = [
        Module(name=m["name"], width=m["width"], height=m["height"],
               flexible=m["flexible"], aspect_low=m["aspect_low"],
               aspect_high=m["aspect_high"], rotatable=m["rotatable"],
               pins=PinCounts(**m["pins"]))
        for m in data["modules"]
    ]
    nets = [
        Net(name=n["name"], modules=tuple(n["modules"]), weight=n["weight"],
            criticality=n["criticality"], max_length=n.get("max_length"))
        for n in data["nets"]
    ]
    return Netlist(modules, nets, name=data["name"])


# ---------------------------------------------------------------------------
# solve telemetry and augmentation traces
# ---------------------------------------------------------------------------

def telemetry_to_dict(telemetry: SolveTelemetry) -> dict[str, Any]:
    """A JSON-safe representation of one solve's telemetry."""
    return telemetry.to_dict()


def telemetry_from_dict(data: dict[str, Any]) -> SolveTelemetry:
    """Rebuild telemetry from :func:`telemetry_to_dict` output."""
    return SolveTelemetry.from_dict(data)


def _step_to_dict(step: AugmentationStep) -> dict[str, Any]:
    """One augmentation step without its (optional, heavy) snapshots."""
    return {
        "index": step.index,
        "group": list(step.group),
        "n_placed_before": step.n_placed_before,
        "n_obstacles": step.n_obstacles,
        "n_binaries": step.n_binaries,
        "n_constraints": step.n_constraints,
        "solve_seconds": step.solve_seconds,
        "status": step.status,
        "objective": step.objective,
        "chip_height_after": step.chip_height_after,
        "n_polygon_edges": step.n_polygon_edges,
        "theorem2_holds": step.theorem2_holds,
        "telemetry": telemetry_to_dict(step.telemetry)
        if step.telemetry else None,
        "certification": step.certification.to_dict()
        if step.certification else None,
    }


def _step_from_dict(data: dict[str, Any]) -> AugmentationStep:
    from repro.check.certify import StepCertification

    telemetry = data.get("telemetry")
    certification = data.get("certification")
    return AugmentationStep(
        index=data["index"],
        group=tuple(data["group"]),
        n_placed_before=data["n_placed_before"],
        n_obstacles=data["n_obstacles"],
        n_binaries=data["n_binaries"],
        n_constraints=data["n_constraints"],
        solve_seconds=data["solve_seconds"],
        status=data["status"],
        objective=data["objective"],
        chip_height_after=data["chip_height_after"],
        n_polygon_edges=data["n_polygon_edges"],
        theorem2_holds=data["theorem2_holds"],
        telemetry=telemetry_from_dict(telemetry) if telemetry else None,
        certification=StepCertification.from_dict(certification)
        if certification else None,
    )


def trace_to_dict(trace: AugmentationTrace) -> dict[str, Any]:
    """A JSON-safe representation of an augmentation trace."""
    return {"steps": [_step_to_dict(s) for s in trace.steps]}


def trace_from_dict(data: dict[str, Any]) -> AugmentationTrace:
    """Rebuild a trace from :func:`trace_to_dict` output (snapshots are not
    persisted and come back as None)."""
    return AugmentationTrace(
        steps=[_step_from_dict(s) for s in data.get("steps", [])])


# ---------------------------------------------------------------------------
# MILP models (differential-fuzzing reproducers)
# ---------------------------------------------------------------------------

def _bound_to_json(value: float) -> float | None:
    """Infinite bounds become None (JSON has no inf)."""
    return None if math.isinf(value) else value


def _bound_from_json(value: float | None, sign: float) -> float:
    return sign * math.inf if value is None else float(value)


def _expr_to_dict(expr: LinExpr) -> dict[str, Any]:
    """Terms as ``[column index, coefficient]`` pairs plus the constant."""
    return {
        "terms": sorted([v.index, c] for v, c in expr.terms.items()),
        "constant": expr.constant,
    }


def model_to_dict(model: Model) -> dict[str, Any]:
    """A JSON-safe, fully self-contained representation of a MILP model.

    Used by the differential fuzzer to persist minimized disagreement
    reproducers; :func:`model_from_dict` rebuilds an equivalent model whose
    standard form matches the original's arrays exactly.
    """
    return {
        "version": FORMAT_VERSION,
        "name": model.name,
        "variables": [
            {"name": v.name, "lb": _bound_to_json(v.lb),
             "ub": _bound_to_json(v.ub), "kind": v.kind.value}
            for v in model.variables
        ],
        "constraints": [
            {"name": con.name, "sense": con.sense.value,
             **_expr_to_dict(con.expr)}
            for con in model.constraints
        ],
        "objective": _expr_to_dict(model.objective),
        "objective_sense": model.objective_sense.value,
    }


def model_from_dict(data: dict[str, Any]) -> Model:
    """Rebuild a MILP model from :func:`model_to_dict` output."""
    model = Model(name=data.get("name", "model"))
    variables = [
        model.add_var(v["name"], lb=_bound_from_json(v["lb"], -1.0),
                      ub=_bound_from_json(v["ub"], 1.0),
                      kind=VarKind(v["kind"]))
        for v in data["variables"]
    ]

    def expr_from(entry: dict[str, Any]) -> LinExpr:
        return LinExpr({variables[int(j)]: float(c)
                        for j, c in entry["terms"]}, entry["constant"])

    for con in data["constraints"]:
        model.add_constraint(
            Constraint(expr_from(con), Sense(con["sense"])),
            name=con["name"])
    model.set_objective(expr_from(data["objective"]),
                        sense=data["objective_sense"])
    return model


# ---------------------------------------------------------------------------
# floorplans
# ---------------------------------------------------------------------------

def _rect_to_list(rect: Rect) -> list[float]:
    return [rect.x, rect.y, rect.w, rect.h]


def _rect_from_list(values: list[float]) -> Rect:
    return Rect(*values)


def _config_to_dict(config: FloorplanConfig) -> dict[str, Any]:
    out = {
        "chip_width": config.chip_width,
        "whitespace_factor": config.whitespace_factor,
        "chip_aspect": config.chip_aspect,
        "seed_size": config.seed_size,
        "group_size": config.group_size,
        "objective": config.objective.value,
        "wirelength_weight": config.wirelength_weight,
        "ordering": config.ordering.value,
        "ordering_seed": config.ordering_seed,
        "allow_rotation": config.allow_rotation,
        "linearization": config.linearization.value,
        "relinearization_rounds": config.relinearization_rounds,
        "use_envelopes": config.use_envelopes,
        "technology": {
            "pitch_h": config.technology.pitch_h,
            "pitch_v": config.technology.pitch_v,
            "style": config.technology.style.value,
        },
        "use_covering_rectangles": config.use_covering_rectangles,
        "covering_style": config.covering_style,
        "merge_covering": config.merge_covering,
        "legalize": config.legalize,
        "backend": config.backend,
        "subproblem_time_limit": config.subproblem_time_limit,
        "mip_rel_gap": config.mip_rel_gap,
        "certify": config.certify,
        "presolve": config.presolve,
        "warm_start": config.warm_start,
        "solve_cache": config.solve_cache,
        "cache_dir": config.cache_dir,
    }
    # Omitted at the default so documents recorded before the formulation
    # axis existed — including the committed goldens — keep round-tripping
    # byte-identically; FloorplanConfig restores the default on load.
    if config.formulation != "bigm":
        out["formulation"] = config.formulation
    # The outline trio follows the same omit-at-default discipline: absent
    # means the open-outline mode every pre-outline document was recorded in.
    if config.outline is not None:
        out["outline"] = [config.outline[0], config.outline[1]]
    if config.outline_aspect is not None:
        out["outline_aspect"] = config.outline_aspect
    if config.whitespace_target is not None:
        out["whitespace_target"] = config.whitespace_target
    # The ECO knobs too: absent means the defaults every pre-ECO document
    # (including the committed goldens) was recorded under.
    if config.eco_margin != 1.0:
        out["eco_margin"] = config.eco_margin
    if config.eco_quality_bound != 1.5:
        out["eco_quality_bound"] = config.eco_quality_bound
    if config.eco_max_levels != 2:
        out["eco_max_levels"] = config.eco_max_levels
    return out


def _config_from_dict(data: dict[str, Any]) -> FloorplanConfig:
    fields = dict(data)
    tech = fields.pop("technology")
    fields["technology"] = Technology(pitch_h=tech["pitch_h"],
                                      pitch_v=tech["pitch_v"],
                                      style=RoutingStyle(tech["style"]))
    return FloorplanConfig(**fields)


def config_to_dict(config: FloorplanConfig) -> dict[str, Any]:
    """A JSON-safe representation of a run configuration.

    The same codec embedded floorplan documents use; the job service
    round-trips request/response configurations through it.  Service-level
    knobs (queue, pool, deadlines) are deliberately not part of the
    document — they describe the server, not the floorplan.
    """
    return _config_to_dict(config)


def config_from_dict(data: dict[str, Any]) -> FloorplanConfig:
    """Rebuild a configuration from :func:`config_to_dict` output."""
    return _config_from_dict(data)


def floorplan_to_dict(plan: Floorplan) -> dict[str, Any]:
    """A self-contained JSON-safe representation of a floorplan."""
    return {
        "version": FORMAT_VERSION,
        "netlist": netlist_to_dict(plan.netlist),
        "config": _config_to_dict(plan.config),
        "chip_width": plan.chip_width,
        "chip_height": plan.chip_height,
        "elapsed_seconds": plan.elapsed_seconds,
        "certification": plan.certification.to_dict()
        if plan.certification else None,
        "trace": trace_to_dict(plan.trace),
        "placements": {
            name: {
                "rect": _rect_to_list(p.rect),
                "rotated": p.rotated,
                "envelope": _rect_to_list(p.envelope),
            }
            for name, p in plan.placements.items()
        },
    }


def floorplan_from_dict(data: dict[str, Any]) -> Floorplan:
    """Rebuild a floorplan from :func:`floorplan_to_dict` output."""
    from repro.check.geometry import GeometryReport

    netlist = netlist_from_dict(data["netlist"])
    placements = {
        name: Placement(
            module=netlist.module(name),
            rect=_rect_from_list(entry["rect"]),
            rotated=entry["rotated"],
            envelope=_rect_from_list(entry["envelope"]),
        )
        for name, entry in data["placements"].items()
    }
    return Floorplan(
        netlist=netlist,
        config=_config_from_dict(data["config"]),
        placements=placements,
        chip_width=data["chip_width"],
        chip_height=data["chip_height"],
        trace=trace_from_dict(data.get("trace", {})),
        elapsed_seconds=data.get("elapsed_seconds", 0.0),
        certification=GeometryReport.from_dict(data["certification"])
        if data.get("certification") else None,
    )


# ---------------------------------------------------------------------------
# netlist deltas (incremental ECO)
# ---------------------------------------------------------------------------

def delta_to_dict(delta: "NetlistDelta") -> dict[str, Any]:
    """A JSON-safe representation of a :class:`~repro.core.eco.NetlistDelta`.

    Reuses the netlist codec's module/net shapes, so a delta document reads
    like a fragment of a netlist document.
    """
    # Added nets may reference pre-existing modules, so they cannot ride
    # through a temporary Netlist (it enforces referential integrity).
    added = netlist_to_dict(Netlist(list(delta.added), name="_delta_"))
    return {
        "version": FORMAT_VERSION,
        "added": added["modules"],
        "removed": list(delta.removed),
        "resized": {name: [w, h] for name, (w, h)
                    in sorted(delta.resized.items())},
        "added_nets": [
            {"name": n.name, "modules": list(n.modules), "weight": n.weight,
             "criticality": n.criticality, "max_length": n.max_length}
            for n in delta.added_nets
        ],
        "removed_nets": list(delta.removed_nets),
    }


def delta_from_dict(data: dict[str, Any]) -> "NetlistDelta":
    """Rebuild a delta from :func:`delta_to_dict` output.

    Unknown keys raise — a mistyped delta document must not silently
    degrade into a no-op edit.
    """
    from repro.core.eco import NetlistDelta

    unknown = set(data) - {"version", "added", "removed", "resized",
                           "added_nets", "removed_nets"}
    if unknown:
        raise ValueError(f"unknown delta fields: {sorted(unknown)}")
    added = tuple(
        Module(name=m["name"], width=m["width"], height=m["height"],
               flexible=m.get("flexible", False),
               aspect_low=m.get("aspect_low", 1.0),
               aspect_high=m.get("aspect_high", 1.0),
               rotatable=m.get("rotatable", True),
               pins=PinCounts(**m["pins"]) if "pins" in m else PinCounts())
        for m in data.get("added", []))
    added_nets = tuple(
        Net(name=n["name"], modules=tuple(n["modules"]),
            weight=n.get("weight", 1.0),
            criticality=n.get("criticality", 0.0),
            max_length=n.get("max_length"))
        for n in data.get("added_nets", []))
    return NetlistDelta(
        added=added,
        removed=tuple(data.get("removed", [])),
        resized={name: (float(w), float(h))
                 for name, (w, h) in data.get("resized", {}).items()},
        added_nets=added_nets,
        removed_nets=tuple(data.get("removed_nets", [])),
    )


def save_floorplan(plan: Floorplan, path: str) -> None:
    """Write a floorplan to a JSON file."""
    with open(path, "w") as f:
        json.dump(floorplan_to_dict(plan), f, indent=1)


def load_floorplan(path: str) -> Floorplan:
    """Read a floorplan from a JSON file."""
    with open(path) as f:
        return floorplan_from_dict(json.load(f))
