"""Routing substrate: generalized pins, channel graph, global router,
channel-width adjustment (sections 3.2 of the paper).

The flow mirrors the paper's: the floorplan defines a channel-position graph
over the free space; nets are routed between *generalized pins* (one per
module side) with a shortest-path or penalty-weighted shortest-path search,
timing-critical nets first; afterwards channel widths are adjusted to the
routed demand and the final chip area is computed.
"""

from repro.routing.technology import Technology, RoutingStyle
from repro.routing.pins import GeneralizedPin, generalized_pins
from repro.routing.graph import ChannelGraph, build_channel_graph
from repro.routing.router import GlobalRouter, RouterMode
from repro.routing.result import RoutingResult, NetRoute
from repro.routing.adjust import adjust_floorplan, AdjustedFloorplan
from repro.routing.flow import (
    RoutedFloorplan,
    provide_routing_space,
    route_and_adjust,
)
from repro.routing.timing import (
    TimingModel,
    apply_criticalities,
    net_slacks,
)

__all__ = [
    "RoutedFloorplan",
    "provide_routing_space",
    "route_and_adjust",
    "TimingModel",
    "apply_criticalities",
    "net_slacks",
    "Technology",
    "RoutingStyle",
    "GeneralizedPin",
    "generalized_pins",
    "ChannelGraph",
    "build_channel_graph",
    "GlobalRouter",
    "RouterMode",
    "RoutingResult",
    "NetRoute",
    "adjust_floorplan",
    "AdjustedFloorplan",
]
