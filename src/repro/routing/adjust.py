"""Channel-width adjustment and final chip area (section 3.2, last step).

"On the final step of the algorithm widths of channels are adjusted to
accommodate results of the global routing and the final chip area is
computed."

We realize the adjustment with the paper's own section-2.5 machinery: the
routed demand through the corridor between every adjacent module pair becomes
a minimum-separation *gap* on that pair's topological relation, and the
given-topology LP recomputes the minimal legal chip.  Envelope margins count
toward the available corridor space, which is exactly why envelope-aware
floorplans grow less during adjustment (the Table-3 effect).

For over-the-cell technologies no channel area is needed and the floorplan is
returned unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.core.config import Linearization
from repro.core.placement import Placement
from repro.core.topology import derive_relations, optimize_topology
from repro.geometry.rect import GEOM_EPS, Rect
from repro.routing.graph import ChannelGraph
from repro.routing.result import RoutingResult
from repro.routing.technology import Technology


@dataclass
class AdjustedFloorplan:
    """A floorplan after routing-space insertion.

    Attributes:
        placements: adjusted placements (keyed by module name).
        chip: the final chip rectangle including routing space.
        chip_area: final chip area (the number Table 3 reports).
        channel_demands: per-relation routed demand in tracks, keyed by
            ``(first, second, axis)``.
        gaps_added: per-relation extra separation inserted by the LP, same
            keys as ``channel_demands``.
    """

    placements: dict[str, Placement]
    chip: Rect
    chip_area: float
    channel_demands: dict[tuple[str, str, str], float]
    gaps_added: dict[tuple[str, str, str], float]

    @property
    def total_gap(self) -> float:
        """Summed inserted separation (a routing-space proxy)."""
        return sum(self.gaps_added.values())


def adjust_floorplan(placements: Mapping[str, Placement],
                     channel_graph: ChannelGraph,
                     routing: RoutingResult,
                     technology: Technology, *,
                     strip_envelopes: bool = True,
                     linearization: Linearization = Linearization.SECANT,
                     backend: str = "highs") -> AdjustedFloorplan:
    """Size channels to the routed demand and recompute the chip.

    Args:
        placements: the routed floorplan.
        channel_graph: the graph the routing ran on (edge usage is read from
            ``routing.edge_usage``).
        routing: the global-routing result.
        technology: pitches; over-the-cell styles skip adjustment.
        strip_envelopes: replace the *estimated* routing reservations
            (envelope margins, preliminary channels) by the *actual* routed
            demand — channels with no wires shrink away, congested ones
            widen.  This is the paper's "widths of channels are adjusted to
            accommodate results of the global routing".  With False, existing
            envelope margins stay reserved and only extra demand adds gaps.
        linearization: height model should flexible modules resize.
        backend: LP backend for the topology re-solve.

    Returns:
        The :class:`AdjustedFloorplan`.
    """
    placement_list = list(placements.values())
    if not technology.needs_channel_area or not placement_list:
        chip = _bounding_chip(placement_list)
        return AdjustedFloorplan(placements=dict(placements), chip=chip,
                                 chip_area=chip.area, channel_demands={},
                                 gaps_added={})

    demands: dict[tuple[str, str, str], float] = {}
    gaps: dict[tuple[str, str, str], float] = {}

    all_rects = [p.rect for p in placement_list]

    def gap_fn(first: Placement, second: Placement, axis: str) -> float:
        demand = _corridor_demand(first, second, axis, channel_graph, routing,
                                  occluders=all_rects)
        required = demand * (technology.pitch_v if axis == "x"
                             else technology.pitch_h)
        margin = 0.0 if strip_envelopes \
            else _margin_between(first, second, axis)
        gap = max(0.0, required - margin)
        key = (first.name, second.name, axis)
        demands[key] = demand
        gaps[key] = gap
        return gap

    if strip_envelopes:
        placement_list = [p.resized(p.rect, p.rect) for p in placement_list]
    relations = derive_relations(placement_list, gap_fn=gap_fn)
    topo = optimize_topology(placement_list, relations,
                             max_chip_width=None,
                             resize_flexible=False,
                             linearization=linearization,
                             backend=backend)
    chip = Rect(0.0, 0.0, topo.chip_width, topo.chip_height)
    return AdjustedFloorplan(
        placements={p.name: p for p in topo.placements},
        chip=chip, chip_area=chip.area,
        channel_demands=demands, gaps_added=gaps)


def _bounding_chip(placements: list[Placement]) -> Rect:
    if not placements:
        return Rect(0.0, 0.0, 0.0, 0.0)
    width = max(p.envelope.x2 for p in placements)
    height = max(p.envelope.y2 for p in placements)
    return Rect(0.0, 0.0, width, height)


def _margin_between(first: Placement, second: Placement, axis: str) -> float:
    """Routing space already reserved between the pair: the gap between their
    module rects minus the gap between their envelopes (i.e. the two facing
    envelope margins, plus any existing slack)."""
    if axis == "x":
        return max(0.0, second.rect.x - first.rect.x2) \
            - max(0.0, second.envelope.x - first.envelope.x2)
    return max(0.0, second.rect.y - first.rect.y2) \
        - max(0.0, second.envelope.y - first.envelope.y2)


def _corridor_demand(first: Placement, second: Placement, axis: str,
                     channel_graph: ChannelGraph,
                     routing: RoutingResult,
                     occluders: list[Rect] | None = None) -> float:
    """Peak number of wires running along the corridor between two modules.

    For an x-relation (``first`` left of ``second``) the corridor is the
    vertical channel between their facing edges over their shared y-span;
    wires *along* it are vertical, i.e. they cross the grid's horizontal
    boundaries inside the corridor.  The demand is the maximum, over those
    boundary lines, of the summed usage crossing inside the corridor.

    A pair whose corridor contains another module is not directly adjacent
    — its separation follows transitively from the adjacent pairs — so its
    demand is 0.
    """
    a, b = first.rect, second.rect
    if axis == "x":
        lo, hi = a.x2, b.x
        span_lo, span_hi = max(a.y, b.y), min(a.y2, b.y2)
        crossing = "h"  # vertical wires cross horizontal boundaries
    else:
        lo, hi = a.y2, b.y
        span_lo, span_hi = max(a.x, b.x), min(a.x2, b.x2)
        crossing = "v"
    if span_hi - span_lo <= GEOM_EPS:
        return 0.0  # diagonal neighbors share no corridor
    if hi - lo > GEOM_EPS and occluders is not None:
        corridor = Rect(lo, span_lo, hi - lo, span_hi - span_lo) \
            if axis == "x" else Rect(span_lo, lo, span_hi - span_lo, hi - lo)
        for other in occluders:
            if other is a or other is b:
                continue
            if other.overlaps(corridor):
                return 0.0

    per_line: dict[float, float] = {}
    graph = channel_graph.graph
    for (u, v), usage in routing.edge_usage.items():
        if usage <= 0 or not graph.has_edge(u, v):
            continue
        data = graph.edges[u, v]
        if data["orientation"] != crossing:
            continue
        rect_u = graph.nodes[u]["rect"]
        rect_v = graph.nodes[v]["rect"]
        if crossing == "h":
            line = rect_u.y2 if rect_u.y < rect_v.y else rect_v.y2
            seg_lo = max(rect_u.x, rect_v.x)
            seg_hi = min(rect_u.x2, rect_v.x2)
            inside = (span_lo - GEOM_EPS <= line <= span_hi + GEOM_EPS
                      and seg_lo < hi - GEOM_EPS and seg_hi > lo + GEOM_EPS)
        else:
            line = rect_u.x2 if rect_u.x < rect_v.x else rect_v.x2
            seg_lo = max(rect_u.y, rect_v.y)
            seg_hi = min(rect_u.y2, rect_v.y2)
            inside = (span_lo - GEOM_EPS <= line <= span_hi + GEOM_EPS
                      and seg_lo < hi - GEOM_EPS and seg_hi > lo + GEOM_EPS)
        if inside:
            per_line[round(line, 6)] = per_line.get(round(line, 6), 0.0) + usage
    return max(per_line.values(), default=0.0)
