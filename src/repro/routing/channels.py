"""Channel extraction: named routing channels with capacities.

The paper's router works on "the system of channels defined by envelopes"
and finally "widths of channels are adjusted".  The routing *graph*
(:mod:`repro.routing.graph`) is the fine-grained view; this module provides
the coarse, named view: maximal free rectangles between module edges,
classified as vertical or horizontal channels, each with a track capacity —
the unit the adjustment step reasons about and the unit reports tabulate.

A free region generally belongs to one vertical and one horizontal channel
(the classic channel-decomposition ambiguity); both are reported, and
consumers pick the orientation matching the wires they care about.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.core.placement import Placement
from repro.geometry.rect import GEOM_EPS, Rect
from repro.routing.graph import ChannelGraph
from repro.routing.result import RoutingResult
from repro.routing.technology import Technology


@dataclass(frozen=True)
class Channel:
    """A named routing channel.

    Attributes:
        name: stable identifier (``v0``, ``v1``, ... / ``h0``, ...).
        rect: the channel's free-space rectangle.
        orientation: ``"v"`` — wires run vertically (capacity set by the
            channel's width); ``"h"`` — wires run horizontally (capacity set
            by the height).
        capacity: number of parallel tracks the channel holds.
    """

    name: str
    rect: Rect
    orientation: str
    capacity: float


def extract_channels(placements: Sequence[Placement], chip: Rect,
                     technology: Technology,
                     min_extent: float = GEOM_EPS) -> list[Channel]:
    """Extract the floorplan's vertical and horizontal channels.

    The chip is cut at every module edge; maximal runs of free cells within
    each column interval become vertical channels, maximal runs within each
    row interval become horizontal ones.  Channels narrower than
    ``min_extent`` (in the track-stacking direction) are dropped.
    """
    xs = _cuts([chip.x, chip.x2]
               + [c for p in placements for c in (p.rect.x, p.rect.x2)],
               chip.x, chip.x2)
    ys = _cuts([chip.y, chip.y2]
               + [c for p in placements for c in (p.rect.y, p.rect.y2)],
               chip.y, chip.y2)
    blockers = [p.rect for p in placements]
    n_cols, n_rows = len(xs) - 1, len(ys) - 1
    free = [[True] * n_rows for _ in range(n_cols)]
    for i in range(n_cols):
        for j in range(n_rows):
            cell = Rect(xs[i], ys[j], xs[i + 1] - xs[i], ys[j + 1] - ys[j])
            if any(b.overlaps(cell) for b in blockers):
                free[i][j] = False

    channels: list[Channel] = []
    # Vertical channels: per column interval, maximal free row runs.
    v_count = 0
    for i in range(n_cols):
        j = 0
        while j < n_rows:
            if free[i][j]:
                j0 = j
                while j < n_rows and free[i][j]:
                    j += 1
                rect = Rect(xs[i], ys[j0], xs[i + 1] - xs[i], ys[j] - ys[j0])
                if rect.w > min_extent:
                    channels.append(Channel(
                        name=f"v{v_count}", rect=rect, orientation="v",
                        capacity=rect.w / technology.pitch_v))
                    v_count += 1
            else:
                j += 1
    # Horizontal channels: per row interval, maximal free column runs.
    h_count = 0
    for j in range(n_rows):
        i = 0
        while i < n_cols:
            if free[i][j]:
                i0 = i
                while i < n_cols and free[i][j]:
                    i += 1
                rect = Rect(xs[i0], ys[j], xs[i] - xs[i0], ys[j + 1] - ys[j])
                if rect.h > min_extent:
                    channels.append(Channel(
                        name=f"h{h_count}", rect=rect, orientation="h",
                        capacity=rect.h / technology.pitch_h))
                    h_count += 1
            else:
                i += 1
    return channels


def channel_utilization(channels: Sequence[Channel],
                        channel_graph: ChannelGraph,
                        routing: RoutingResult) -> dict[str, float]:
    """Peak wires-through over capacity, per channel.

    For a vertical channel the wires running along it cross the grid's
    horizontal boundaries inside the channel rect; their peak per-boundary
    sum over the channel's capacity is the utilization (mirrors the
    adjustment step's corridor-demand measure).
    """
    graph = channel_graph.graph
    result: dict[str, float] = {}
    for channel in channels:
        crossing = "h" if channel.orientation == "v" else "v"
        per_line: dict[float, float] = {}
        for (u, v), usage in routing.edge_usage.items():
            if usage <= 0 or not graph.has_edge(u, v):
                continue
            data = graph.edges[u, v]
            if data["orientation"] != crossing:
                continue
            rect_u = graph.nodes[u]["rect"]
            rect_v = graph.nodes[v]["rect"]
            if crossing == "h":
                line = rect_u.y2 if rect_u.y < rect_v.y else rect_v.y2
                seg_lo = max(rect_u.x, rect_v.x)
                seg_hi = min(rect_u.x2, rect_v.x2)
                inside = (channel.rect.y - GEOM_EPS <= line
                          <= channel.rect.y2 + GEOM_EPS
                          and seg_lo < channel.rect.x2 - GEOM_EPS
                          and seg_hi > channel.rect.x + GEOM_EPS)
            else:
                line = rect_u.x2 if rect_u.x < rect_v.x else rect_v.x2
                seg_lo = max(rect_u.y, rect_v.y)
                seg_hi = min(rect_u.y2, rect_v.y2)
                inside = (channel.rect.x - GEOM_EPS <= line
                          <= channel.rect.x2 + GEOM_EPS
                          and seg_lo < channel.rect.y2 - GEOM_EPS
                          and seg_hi > channel.rect.y + GEOM_EPS)
            if inside:
                key = round(line, 6)
                per_line[key] = per_line.get(key, 0.0) + usage
        demand = max(per_line.values(), default=0.0)
        result[channel.name] = demand / channel.capacity \
            if channel.capacity > 0 else 0.0
    return result


def congested_channels(channels: Sequence[Channel],
                       utilization: Mapping[str, float],
                       threshold: float = 1.0) -> list[Channel]:
    """Channels whose utilization meets or exceeds ``threshold``."""
    return [c for c in channels
            if utilization.get(c.name, 0.0) >= threshold]


def _cuts(values, lo: float, hi: float, eps: float = GEOM_EPS) -> list[float]:
    clipped = sorted(min(max(v, lo), hi) for v in values)
    cuts: list[float] = []
    for v in clipped:
        if not cuts or v - cuts[-1] > eps:
            cuts.append(v)
    if len(cuts) < 2:
        cuts = [lo, hi]
    return cuts
