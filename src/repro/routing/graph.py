"""The channel-position graph.

"Our global router is graph based.  It uses the channel position graph
obtained from the floorplan produced by the integer programming step and
assigns a preliminary capacity to each edge."

The graph is built over the floorplan's *channel grid*: the distinct module
edge coordinates cut the chip into cells; free cells (not covered by a
module) become nodes, and adjacent free cells are joined by edges whose
capacity is the number of routing tracks that fit through their shared
boundary.  For over-the-cell technologies every cell is free.  A ring of
routing space is added around the chip so nets can always detour around the
module block (around-the-cell routing).
"""

from __future__ import annotations

import bisect
import math
from collections import deque
from dataclasses import dataclass
from typing import Iterable, Sequence

import networkx as nx

from repro.core.placement import Placement
from repro.geometry.rect import GEOM_EPS, Rect
from repro.routing.pins import GeneralizedPin
from repro.routing.technology import Technology

Node = tuple[int, int]


@dataclass
class ChannelGraph:
    """The routing graph plus its grid geometry.

    Attributes:
        graph: undirected networkx graph; nodes are ``(i, j)`` cell indices
            with attributes ``rect`` and ``center``; edges carry ``length``
            (center-to-center distance), ``capacity`` (tracks through the
            shared boundary), ``usage`` (routed wires so far), and
            ``orientation`` (``"h"`` for a horizontal boundary crossed by
            vertical wires, ``"v"`` for a vertical boundary crossed by
            horizontal wires).
        xs: sorted x cut coordinates.
        ys: sorted y cut coordinates.
        region: the routed region (chip plus routing ring).
    """

    graph: nx.Graph
    xs: list[float]
    ys: list[float]
    region: Rect

    def cell_rect(self, node: Node) -> Rect:
        """Geometry of a cell node."""
        return self.graph.nodes[node]["rect"]

    def node_at(self, x: float, y: float) -> Node | None:
        """The cell containing point ``(x, y)``, or None when outside the
        region or blocked."""
        i = bisect.bisect_right(self.xs, x) - 1
        j = bisect.bisect_right(self.ys, y) - 1
        i = min(max(i, 0), len(self.xs) - 2)
        j = min(max(j, 0), len(self.ys) - 2)
        node = (i, j)
        return node if node in self.graph else None

    def main_component(self) -> frozenset[Node]:
        """The largest connected component of free cells.

        Compacted floorplans can enclose isolated free pockets; pins snap to
        the main component so every terminal is mutually reachable.
        """
        if getattr(self, "_main_component", None) is None:
            import networkx as nx

            if self.graph.number_of_nodes() == 0:
                self._main_component = frozenset()
            else:
                biggest = max(nx.connected_components(self.graph), key=len)
                self._main_component = frozenset(biggest)
        return self._main_component

    def nearest_node(self, x: float, y: float, *,
                     connected_only: bool = True) -> Node:
        """The free cell nearest to ``(x, y)``: the containing cell when
        acceptable, otherwise a breadth-first search over grid neighbors.

        Args:
            connected_only: restrict the answer to the main connected
                component (so routing between returned nodes always exists).

        Raises:
            ValueError: when the graph has no nodes at all.
        """
        if self.graph.number_of_nodes() == 0:
            raise ValueError("channel graph has no free cells")
        allowed = self.main_component() if connected_only else None

        def acceptable(node: Node) -> bool:
            return node in self.graph and (allowed is None or node in allowed)

        direct = self.node_at(x, y)
        if direct is not None and acceptable(direct):
            return direct
        i = min(max(bisect.bisect_right(self.xs, x) - 1, 0), len(self.xs) - 2)
        j = min(max(bisect.bisect_right(self.ys, y) - 1, 0), len(self.ys) - 2)
        seen = {(i, j)}
        queue: deque[Node] = deque([(i, j)])
        while queue:
            ci, cj = queue.popleft()
            if acceptable((ci, cj)):
                return (ci, cj)
            for ni, nj in ((ci + 1, cj), (ci - 1, cj), (ci, cj + 1), (ci, cj - 1)):
                if 0 <= ni < len(self.xs) - 1 and 0 <= nj < len(self.ys) - 1 \
                        and (ni, nj) not in seen:
                    seen.add((ni, nj))
                    queue.append((ni, nj))
        # Unreachable by construction (some free cell always exists), but
        # fall back to any node rather than crash.
        return next(iter(self.graph.nodes))

    def pin_node(self, pin: GeneralizedPin) -> Node:
        """The routing node serving a generalized pin: the free cell just
        outside the pin's module side (nearest reachable free cell when the
        channel there is fully blocked)."""
        nudge = GEOM_EPS * 10
        offsets = {"left": (-nudge, 0.0), "right": (nudge, 0.0),
                   "bottom": (0.0, -nudge), "top": (0.0, nudge)}
        dx, dy = offsets[pin.side.value]
        return self.nearest_node(pin.x + dx, pin.y + dy)

    def reset_usage(self) -> None:
        """Clear routed usage on every edge."""
        for _u, _v, data in self.graph.edges(data=True):
            data["usage"] = 0.0

    def total_overflow(self) -> float:
        """Summed usage beyond capacity over all edges."""
        return sum(max(0.0, d["usage"] - d["capacity"])
                   for _u, _v, d in self.graph.edges(data=True))


def build_channel_graph(placements: Sequence[Placement], chip: Rect,
                        technology: Technology, *,
                        ring_width: float | None = None,
                        max_cell_size: float | None = None) -> ChannelGraph:
    """Build the channel-position graph for a floorplan.

    Args:
        placements: placed modules (module rects block cells for
            around-the-cell technologies; envelope margins remain routable).
        chip: the chip rectangle from the floorplanner.
        technology: pitches and routing style.
        ring_width: width of the open routing ring around the chip; defaults
            to 8 tracks of the larger pitch (0 disables the ring).
        max_cell_size: subdivide grid intervals larger than this so channels
            have internal routing resolution (a net between two facing module
            sides then crosses at least one edge and registers channel
            usage).  Defaults to 1/24 of the larger region dimension.

    Returns:
        The :class:`ChannelGraph`.
    """
    if ring_width is None:
        ring_width = 8.0 * max(technology.pitch_h, technology.pitch_v)
    region = chip.inflated(ring_width, ring_width, ring_width, ring_width) \
        if ring_width > 0 else chip
    if max_cell_size is None:
        max_cell_size = max(region.w, region.h) / 24.0

    xs = _cuts([region.x, region.x2]
               + [c for p in placements for c in (p.rect.x, p.rect.x2)],
               region.x, region.x2)
    ys = _cuts([region.y, region.y2]
               + [c for p in placements for c in (p.rect.y, p.rect.y2)],
               region.y, region.y2)
    xs = _subdivide(xs, max_cell_size)
    ys = _subdivide(ys, max_cell_size)

    blockers = [] if not technology.needs_channel_area \
        else [p.rect for p in placements]

    graph = nx.Graph()
    n_cols = len(xs) - 1
    n_rows = len(ys) - 1
    free = [[False] * n_rows for _ in range(n_cols)]
    for i in range(n_cols):
        for j in range(n_rows):
            cell = Rect(xs[i], ys[j], xs[i + 1] - xs[i], ys[j + 1] - ys[j])
            if not any(b.overlaps(cell) for b in blockers):
                free[i][j] = True
                graph.add_node((i, j), rect=cell, center=cell.center)

    for i in range(n_cols):
        for j in range(n_rows):
            if not free[i][j]:
                continue
            cell = graph.nodes[(i, j)]["rect"]
            # right neighbor: vertical boundary, crossed by horizontal wires
            if i + 1 < n_cols and free[i + 1][j]:
                other = graph.nodes[(i + 1, j)]["rect"]
                boundary = cell.h
                graph.add_edge(
                    (i, j), (i + 1, j),
                    length=_dist(cell.center, other.center),
                    capacity=boundary / technology.pitch_h,
                    usage=0.0, orientation="v")
            # top neighbor: horizontal boundary, crossed by vertical wires
            if j + 1 < n_rows and free[i][j + 1]:
                other = graph.nodes[(i, j + 1)]["rect"]
                boundary = cell.w
                graph.add_edge(
                    (i, j), (i, j + 1),
                    length=_dist(cell.center, other.center),
                    capacity=boundary / technology.pitch_v,
                    usage=0.0, orientation="h")

    return ChannelGraph(graph=graph, xs=xs, ys=ys, region=region)


def _cuts(values: Iterable[float], lo: float, hi: float,
          eps: float = GEOM_EPS) -> list[float]:
    """Sorted, deduplicated cut coordinates clipped to ``[lo, hi]``."""
    clipped = sorted(min(max(v, lo), hi) for v in values)
    cuts: list[float] = []
    for v in clipped:
        if not cuts or v - cuts[-1] > eps:
            cuts.append(v)
    if len(cuts) < 2:
        cuts = [lo, hi]
    return cuts


def _subdivide(cuts: list[float], max_size: float) -> list[float]:
    """Insert evenly spaced cuts so no interval exceeds ``max_size``."""
    if max_size <= 0:
        return cuts
    refined: list[float] = [cuts[0]]
    for a, b in zip(cuts, cuts[1:]):
        gap = b - a
        if gap > max_size:
            pieces = math.ceil(gap / max_size)
            refined.extend(a + gap * k / pieces for k in range(1, pieces))
        refined.append(b)
    return refined


def _dist(a: tuple[float, float], b: tuple[float, float]) -> float:
    """Manhattan distance between cell centers (wires are rectilinear)."""
    return abs(a[0] - b[0]) + abs(a[1] - b[1])
