"""Net criticality from a timing model ([YOU89] hook).

The paper routes "nets with the tight timing requirements" first, citing
Youssef/Shragowitz/Bening's critical-path work.  This module supplies the
hook's data: given per-net delay budgets and an estimated (or routed) net
length, it computes slacks and a normalized criticality in [0, 1] that the
router's ordering and the selection heuristic consume.

The delay model is intentionally simple — wire delay proportional to net
length plus a per-endpoint load term — because the paper only needs a
*ranking* of nets, not signoff timing.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Mapping

from repro.core.placement import Placement
from repro.netlist.net import Net
from repro.netlist.netlist import Netlist


@dataclass(frozen=True)
class TimingModel:
    """Linear wire-delay model.

    Attributes:
        delay_per_unit: delay per unit of net length (HPWL).
        delay_per_pin: load delay per net endpoint.
    """

    delay_per_unit: float = 1.0
    delay_per_pin: float = 0.5

    def net_delay(self, length: float, degree: int) -> float:
        """Estimated delay of a net of the given length and degree."""
        return self.delay_per_unit * length + self.delay_per_pin * degree


def net_length_estimate(net: Net,
                        placements: Mapping[str, Placement]) -> float:
    """Half-perimeter length of a net over module centers."""
    xs = [placements[m].rect.cx for m in net.modules]
    ys = [placements[m].rect.cy for m in net.modules]
    return (max(xs) - min(xs)) + (max(ys) - min(ys))


def net_slacks(netlist: Netlist, placements: Mapping[str, Placement],
               budgets: Mapping[str, float],
               model: TimingModel | None = None) -> dict[str, float]:
    """Per-net slack = budget - estimated delay.

    Nets without a budget get infinite slack (never critical).
    """
    model = model or TimingModel()
    slacks: dict[str, float] = {}
    for net in netlist.nets:
        budget = budgets.get(net.name)
        if budget is None:
            slacks[net.name] = float("inf")
            continue
        delay = model.net_delay(net_length_estimate(net, placements),
                                net.degree)
        slacks[net.name] = budget - delay
    return slacks


def apply_criticalities(netlist: Netlist,
                        placements: Mapping[str, Placement],
                        budgets: Mapping[str, float],
                        model: TimingModel | None = None,
                        slack_margin: float = 0.0) -> Netlist:
    """A copy of ``netlist`` with criticalities derived from timing slack.

    Nets whose slack falls at or below ``slack_margin`` become critical; the
    criticality is the violation normalized to [0, 1] over the violating
    nets, so the tightest net routes first.

    Args:
        netlist: the circuit.
        placements: placements the length estimates are taken from.
        budgets: per-net delay budgets (missing = unconstrained).
        model: the wire-delay model.
        slack_margin: slack at which a net starts counting as critical.

    Returns:
        A new :class:`~repro.netlist.netlist.Netlist` with updated nets.
    """
    slacks = net_slacks(netlist, placements, budgets, model)
    violations = {name: slack_margin - s for name, s in slacks.items()
                  if s <= slack_margin}
    worst = max(violations.values(), default=0.0)
    new_nets = []
    for net in netlist.nets:
        if net.name in violations and worst > 0:
            criticality = max(0.05, violations[net.name] / worst)
            new_nets.append(replace(net, criticality=criticality))
        elif net.name in violations:
            new_nets.append(replace(net, criticality=1.0))
        else:
            new_nets.append(replace(net, criticality=0.0))
    return Netlist(list(netlist.modules), new_nets, name=netlist.name)
