"""Routing technology parameters.

The paper's input information "includes the widths and spacings of metals for
routing in both horizontal and vertical directions" (section 2.2) and
distinguishes two technologies in the experiments: *over-the-cell* routing
(Series 2 — wires run over modules, no routing area is added) and
*around-the-cell* routing (Series 3 — wires consume channel area between
modules).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum


class RoutingStyle(str, Enum):
    """Where wires may run relative to modules."""

    OVER_THE_CELL = "over_the_cell"
    AROUND_THE_CELL = "around_the_cell"


@dataclass(frozen=True)
class Technology:
    """Routing technology: track pitches and routing style.

    Attributes:
        pitch_h: metal width plus spacing of one *horizontal* routing track
            (the paper's ``p_h``); horizontal tracks stack vertically, so this
            pitch widens horizontal channels.
        pitch_v: pitch of one vertical routing track; widens vertical channels.
        style: over-the-cell or around-the-cell routing.
    """

    pitch_h: float = 0.25
    pitch_v: float = 0.25
    style: RoutingStyle = RoutingStyle.AROUND_THE_CELL

    def __post_init__(self) -> None:
        if self.pitch_h <= 0 or self.pitch_v <= 0:
            raise ValueError("routing pitches must be positive")

    @classmethod
    def over_the_cell(cls, pitch_h: float = 0.25, pitch_v: float = 0.25) -> "Technology":
        """Series-2 technology: routing over the cells, no channel area."""
        return cls(pitch_h=pitch_h, pitch_v=pitch_v,
                   style=RoutingStyle.OVER_THE_CELL)

    @classmethod
    def around_the_cell(cls, pitch_h: float = 0.25, pitch_v: float = 0.25) -> "Technology":
        """Series-3 technology: routing in channels around the cells."""
        return cls(pitch_h=pitch_h, pitch_v=pitch_v,
                   style=RoutingStyle.AROUND_THE_CELL)

    @property
    def needs_channel_area(self) -> bool:
        """True when routed wires consume chip area."""
        return self.style is RoutingStyle.AROUND_THE_CELL
