"""Routing results."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.routing.graph import Node


@dataclass(frozen=True)
class NetRoute:
    """The routed tree of one net.

    Attributes:
        net: the net's name.
        edges: routed graph edges (node pairs in canonical order).
        length: total routed length (sum of edge lengths).
        n_terminals: number of connected modules.
    """

    net: str
    edges: tuple[tuple[Node, Node], ...]
    length: float
    n_terminals: int


@dataclass
class RoutingResult:
    """Outcome of a global-routing pass.

    Attributes:
        routes: per-net routed trees, in routing order (critical nets first).
        total_wirelength: summed routed length over all nets.
        edge_usage: wires per graph edge (canonical node-pair keys).
        total_overflow: summed usage beyond capacity.
        max_edge_utilization: the most congested edge's usage/capacity.
        failed_nets: nets that could not be connected (disconnected graph).
    """

    routes: list[NetRoute] = field(default_factory=list)
    total_wirelength: float = 0.0
    edge_usage: dict[tuple[Node, Node], float] = field(default_factory=dict)
    total_overflow: float = 0.0
    max_edge_utilization: float = 0.0
    failed_nets: list[str] = field(default_factory=list)

    @property
    def n_routed(self) -> int:
        """Number of successfully routed nets."""
        return len(self.routes)

    def route_of(self, net_name: str) -> NetRoute | None:
        """The route of the named net, if it was routed."""
        for r in self.routes:
            if r.net == net_name:
                return r
        return None


def canonical_edge(u: Node, v: Node) -> tuple[Node, Node]:
    """Order an edge's endpoints deterministically for dictionary keys."""
    return (u, v) if u <= v else (v, u)
