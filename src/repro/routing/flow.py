"""The complete routing flow of Series 3.

The paper provides routing area in one of two ways before global routing:

1. **Floorplan adjustment without envelopes** — the packed floorplan is
   spread apart with uniform preliminary channels
   (:func:`provide_routing_space`), the router assigns nets to them, and the
   channel widths are then adjusted to the routed demand;
2. **Floorplan adjustment with envelopes** — the floorplan was placed with
   pin-proportional envelopes (section 3.2), so channels already exist where
   pins are dense; routing and adjustment run directly.

:func:`route_and_adjust` drives either variant end to end and reports the
final chip area and routed wirelength — the two columns of Table 3.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.core.placement import Placement
from repro.core.topology import derive_relations, optimize_topology
from repro.geometry.rect import GEOM_EPS, Rect
from repro.netlist.netlist import Netlist
from repro.routing.adjust import AdjustedFloorplan, adjust_floorplan
from repro.routing.graph import ChannelGraph, build_channel_graph
from repro.routing.result import RoutingResult
from repro.routing.router import GlobalRouter, RouterMode
from repro.routing.technology import Technology

#: Default width of a preliminary channel, in routing tracks.
DEFAULT_PRELIMINARY_TRACKS = 4.0


def provide_routing_space(placements: Mapping[str, Placement],
                          technology: Technology, *,
                          tracks: float = DEFAULT_PRELIMINARY_TRACKS,
                          backend: str = "highs") -> dict[str, Placement]:
    """Open uniform preliminary channels between adjacent modules.

    Every module pair that shares a corridor (overlapping spans on the
    perpendicular axis) gets a minimum separation of ``tracks`` routing
    pitches, less any space its envelopes already reserve.  The spread is
    computed with the section-2.5 topology LP, so relative positions are
    preserved and the chip grows minimally.
    """
    placement_list = list(placements.values())

    def gap_fn(first: Placement, second: Placement, axis: str) -> float:
        a, b = first.envelope, second.envelope
        if axis == "x":
            span = min(a.y2, b.y2) - max(a.y, b.y)
            pitch = technology.pitch_v
        else:
            span = min(a.x2, b.x2) - max(a.x, b.x)
            pitch = technology.pitch_h
        if span <= GEOM_EPS:
            return 0.0
        margin = _reserved_between(first, second, axis)
        return max(0.0, tracks * pitch - margin)

    relations = derive_relations(placement_list, gap_fn=gap_fn)
    topo = optimize_topology(placement_list, relations,
                             max_chip_width=None, resize_flexible=False,
                             backend=backend)
    return {p.name: p for p in topo.placements}


def _reserved_between(first: Placement, second: Placement, axis: str) -> float:
    """Envelope-margin space the pair already reserves toward its corridor."""
    if axis == "x":
        return (first.envelope.x2 - first.rect.x2) + \
            (second.rect.x - second.envelope.x)
    return (first.envelope.y2 - first.rect.y2) + \
        (second.rect.y - second.envelope.y)


@dataclass
class RoutedFloorplan:
    """End-to-end result of the Series-3 flow.

    Attributes:
        placements: final module placements (after channel adjustment).
        chip: final chip rectangle including routing space.
        routing: the final global-routing pass on the adjusted floorplan.
        preliminary_routing: the routing pass that measured channel demand.
        adjustment: the channel-width adjustment record.
        graph: the final channel graph.
    """

    placements: dict[str, Placement]
    chip: Rect
    routing: RoutingResult
    preliminary_routing: RoutingResult
    adjustment: AdjustedFloorplan | None
    graph: ChannelGraph

    @property
    def chip_area(self) -> float:
        """Final chip area (modules + routing) — Table 3's area column."""
        return self.chip.area

    @property
    def wirelength(self) -> float:
        """Final routed wirelength — Table 3's wire-length column."""
        return self.routing.total_wirelength

    def utilization(self) -> float:
        """Module area over final chip area."""
        module_area = sum(p.rect.area for p in self.placements.values())
        return module_area / self.chip.area if self.chip.area > 0 else 0.0


def route_and_adjust(placements: Mapping[str, Placement], chip: Rect,
                     netlist: Netlist, technology: Technology, *,
                     mode: RouterMode = RouterMode.WEIGHTED,
                     preliminary_tracks: float = DEFAULT_PRELIMINARY_TRACKS,
                     use_preliminary_spread: bool | None = None,
                     congestion_penalty: float = 4.0,
                     backend: str = "highs") -> RoutedFloorplan:
    """Run the full routing flow: provide space, route, adjust, re-route.

    Args:
        placements: the floorplanner's output.
        chip: the floorplanner's chip rectangle.
        netlist: supplies the nets.
        technology: routing style and pitches.  Over-the-cell styles route in
            place with no spreading or adjustment.
        mode: shortest-path or congestion-weighted routing.
        preliminary_tracks: uniform preliminary channel width (in tracks)
            when spreading is used.
        use_preliminary_spread: force the without-envelopes variant (spread
            first).  Defaults to spreading exactly when the placements carry
            no envelope margins.
        congestion_penalty: router penalty weight in WEIGHTED mode.
        backend: LP backend for spreading/adjustment.

    Returns:
        The :class:`RoutedFloorplan`.
    """
    current = dict(placements)

    if not technology.needs_channel_area:
        graph = build_channel_graph(list(current.values()), chip, technology,
                                    ring_width=0.0)
        router = GlobalRouter(graph, mode=mode,
                              congestion_penalty=congestion_penalty)
        routing = router.route(netlist.nets, current)
        return RoutedFloorplan(placements=current, chip=chip,
                               routing=routing, preliminary_routing=routing,
                               adjustment=None, graph=graph)

    if use_preliminary_spread is None:
        has_margins = any(p.envelope.area > p.rect.area + GEOM_EPS
                          for p in current.values())
        use_preliminary_spread = not has_margins
    if use_preliminary_spread:
        current = provide_routing_space(current, technology,
                                        tracks=preliminary_tracks,
                                        backend=backend)

    work_chip = _chip_of(current)
    graph = build_channel_graph(list(current.values()), work_chip, technology)
    router = GlobalRouter(graph, mode=mode,
                          congestion_penalty=congestion_penalty)
    preliminary = router.route(netlist.nets, current)

    adjustment = adjust_floorplan(current, graph, preliminary, technology,
                                  backend=backend)
    final_placements = adjustment.placements
    final_chip = adjustment.chip

    final_graph = build_channel_graph(list(final_placements.values()),
                                      final_chip, technology)
    final_router = GlobalRouter(final_graph, mode=mode,
                                congestion_penalty=congestion_penalty)
    final_routing = final_router.route(netlist.nets, final_placements)

    return RoutedFloorplan(placements=final_placements, chip=final_chip,
                           routing=final_routing,
                           preliminary_routing=preliminary,
                           adjustment=adjustment, graph=final_graph)


def _chip_of(placements: Mapping[str, Placement]) -> Rect:
    """Bounding chip of a placement set."""
    values = list(placements.values())
    if not values:
        return Rect(0.0, 0.0, 1.0, 1.0)
    return Rect(0.0, 0.0,
                max(p.envelope.x2 for p in values),
                max(p.envelope.y2 for p in values))
