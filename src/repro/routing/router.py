"""The global router (section 3.2).

"It uses the shortest path algorithm to find a route between two generalized
pins.  It also uses a penalty function for utilization of a channel beyond
its preliminary capacity.  Nets with the tight timing requirements are routed
first."

Two modes, matching Series 3:

* **SHORTEST** — plain shortest paths by geometric length;
* **WEIGHTED** — length scaled by a congestion penalty that grows once a
  channel's usage approaches/exceeds its preliminary capacity, spreading
  wires away from saturated channels.

Multi-pin nets are routed as approximate Steiner trees by iterative nearest-
terminal growth: the tree starts at one module's generalized pins and
repeatedly absorbs the cheapest path to a not-yet-connected module (any of
its four pins), updating channel usage as it goes.
"""

from __future__ import annotations

import heapq
from enum import Enum
from typing import Mapping, Sequence

from repro.core.placement import Placement
from repro.netlist.net import Net
from repro.routing.graph import ChannelGraph, Node
from repro.routing.pins import generalized_pins
from repro.routing.result import NetRoute, RoutingResult, canonical_edge


class RouterMode(str, Enum):
    """Routing cost modes of Series 3."""

    SHORTEST = "shortest"
    WEIGHTED = "weighted"


class GlobalRouter:
    """Graph-based global router over a :class:`ChannelGraph`."""

    def __init__(self, channel_graph: ChannelGraph,
                 mode: RouterMode = RouterMode.WEIGHTED,
                 congestion_penalty: float = 4.0) -> None:
        """
        Args:
            channel_graph: the routing graph (usage is reset on each
                :meth:`route` call).
            mode: shortest-path or congestion-weighted costs.
            congestion_penalty: weight of the over-utilization penalty in
                WEIGHTED mode.
        """
        self.channel_graph = channel_graph
        self.mode = RouterMode(mode)
        self.congestion_penalty = congestion_penalty

    # -- public API -----------------------------------------------------------------

    def route(self, nets: Sequence[Net],
              placements: Mapping[str, Placement],
              rip_up_rounds: int = 0) -> RoutingResult:
        """Route all nets; timing-critical nets first.

        Args:
            nets: the nets to route.
            placements: placements of every module the nets reference.
            rip_up_rounds: after the initial pass, repeat up to this many
                rip-up-and-reroute rounds: nets crossing over-capacity
                channels are torn out (least-critical first) and re-routed
                against the remaining usage, with a growing congestion
                penalty.  0 keeps the paper's single-pass behaviour.

        Returns:
            The :class:`~repro.routing.result.RoutingResult`.
        """
        graph = self.channel_graph.graph
        self.channel_graph.reset_usage()

        pin_nodes: dict[str, list[Node]] = {}
        for name, placement in placements.items():
            nodes = {self.channel_graph.pin_node(pin)
                     for pin in generalized_pins(placement)}
            pin_nodes[name] = sorted(nodes)

        # "Nets with the tight timing requirements are routed first"; among
        # equals, short (low-degree) nets first for stable behaviour.
        order = sorted(nets, key=lambda n: (-n.criticality, n.degree, n.name))
        routed: dict[str, NetRoute] = {}
        failed: list[str] = []
        for net in order:
            route = self._route_net(net, pin_nodes)
            if route is None:
                failed.append(net.name)
                continue
            routed[net.name] = route
            self._commit(route, +1.0)

        nets_by_name = {n.name: n for n in order}
        base_penalty = self.congestion_penalty
        try:
            for round_index in range(rip_up_rounds):
                offenders = self._overflowing_nets(routed, nets_by_name)
                if not offenders:
                    break
                # pressure congestion harder each round
                self.congestion_penalty = base_penalty * (2.0 ** (round_index + 1))
                for net in offenders:
                    old = routed.pop(net.name)
                    self._commit(old, -1.0)
                    new = self._route_net(net, pin_nodes)
                    if new is None:
                        self._commit(old, +1.0)
                        routed[net.name] = old
                        continue
                    self._commit(new, +1.0)
                    routed[net.name] = new
        finally:
            self.congestion_penalty = base_penalty

        result = RoutingResult(failed_nets=failed)
        for net in order:
            route = routed.get(net.name)
            if route is None:
                continue
            result.routes.append(route)
            result.total_wirelength += route.length
            for u, v in route.edges:
                key = canonical_edge(u, v)
                result.edge_usage[key] = result.edge_usage.get(key, 0.0) + 1.0
        result.total_overflow = self.channel_graph.total_overflow()
        result.max_edge_utilization = max(
            (d["usage"] / d["capacity"]
             for _u, _v, d in graph.edges(data=True) if d["capacity"] > 0),
            default=0.0)
        return result

    # -- rip-up helpers ----------------------------------------------------------------

    def _commit(self, route: NetRoute, delta: float) -> None:
        """Apply (or remove) a route's usage on the graph."""
        graph = self.channel_graph.graph
        for u, v in route.edges:
            graph.edges[u, v]["usage"] += delta

    def _overflowing_nets(self, routed: Mapping[str, NetRoute],
                          nets_by_name: Mapping[str, Net]) -> list[Net]:
        """Nets using at least one over-capacity edge, least critical (and
        longest) first so timing-critical routes keep their paths."""
        graph = self.channel_graph.graph
        hot = {(u, v) if u <= v else (v, u)
               for u, v, d in graph.edges(data=True)
               if d["usage"] > d["capacity"] + 1e-9}
        if not hot:
            return []
        offenders = [nets_by_name[name] for name, route in routed.items()
                     if any(e in hot for e in route.edges)]
        offenders.sort(key=lambda n: (n.criticality,
                                      -routed[n.name].length, n.name))
        return offenders

    # -- internals ---------------------------------------------------------------------

    def _edge_cost(self, data: dict) -> float:
        """Edge cost under the current mode and usage."""
        length = data["length"]
        if self.mode is RouterMode.SHORTEST:
            return length
        capacity = max(data["capacity"], 1e-9)
        utilization = (data["usage"] + 1.0) / capacity
        penalty = self.congestion_penalty * max(0.0, utilization - 1.0)
        return length * (1.0 + penalty)

    def _route_net(self, net: Net,
                   pin_nodes: Mapping[str, list[Node]]) -> NetRoute | None:
        """Grow a Steiner-ish tree over the net's terminals."""
        terminals = [pin_nodes[name] for name in net.modules
                     if name in pin_nodes]
        if len(terminals) < 2:
            return None

        tree_nodes: set[Node] = set(terminals[0])
        remaining = list(range(1, len(terminals)))
        edges: list[tuple[Node, Node]] = []

        while remaining:
            target_of: dict[Node, int] = {}
            for idx in remaining:
                for node in terminals[idx]:
                    target_of.setdefault(node, idx)
            path = self._multi_source_shortest(tree_nodes, set(target_of))
            if path is None:
                return None
            reached = path[-1]
            connected = target_of[reached]
            remaining.remove(connected)
            for a, b in zip(path, path[1:]):
                edges.append(canonical_edge(a, b))
            tree_nodes.update(path)
            tree_nodes.update(terminals[connected])

        # Deduplicate edges shared by several branch paths.
        unique_edges = tuple(dict.fromkeys(edges))
        unique_length = sum(self.channel_graph.graph.edges[u, v]["length"]
                            for u, v in unique_edges)
        return NetRoute(net=net.name, edges=unique_edges,
                        length=unique_length, n_terminals=len(terminals))

    def _multi_source_shortest(self, sources: set[Node],
                               targets: set[Node]) -> list[Node] | None:
        """Dijkstra from all of ``sources`` to the nearest of ``targets``.

        Returns the node path (source ... target) or None when unreachable.
        """
        overlap = sources & targets
        if overlap:
            node = min(overlap)
            return [node]
        graph = self.channel_graph.graph
        dist: dict[Node, float] = {}
        prev: dict[Node, Node | None] = {}
        heap: list[tuple[float, Node]] = []
        for s in sources:
            if s in graph:
                dist[s] = 0.0
                prev[s] = None
                heapq.heappush(heap, (0.0, s))
        while heap:
            d, u = heapq.heappop(heap)
            if d > dist.get(u, float("inf")):
                continue
            if u in targets:
                path = [u]
                while prev[path[-1]] is not None:
                    path.append(prev[path[-1]])  # type: ignore[arg-type]
                path.reverse()
                return path
            for v, data in graph[u].items():
                nd = d + self._edge_cost(data)
                if nd < dist.get(v, float("inf")):
                    dist[v] = nd
                    prev[v] = u
                    heapq.heappush(heap, (nd, v))
        return None
