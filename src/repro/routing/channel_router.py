"""Left-edge channel routing: track assignment inside a channel.

The paper's final step sizes each channel to its routed demand.  The
classical way to turn "wires through a channel" into "tracks needed" is the
left-edge algorithm (Hashimoto-Stevens): each wire occupies an interval
along the channel; intervals are sorted by left endpoint and greedily packed
onto tracks, never putting overlapping intervals on one track.  For
dogleg-free routing with no vertical constraints the result uses exactly
*density* tracks — the maximum number of intervals crossing any point —
which is optimal.

This module provides the algorithm plus the bridge from a global-routing
result to per-channel intervals, so channel widths can be validated (and
reported) at track precision.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.geometry.rect import GEOM_EPS
from repro.routing.channels import Channel
from repro.routing.graph import ChannelGraph
from repro.routing.result import RoutingResult


@dataclass(frozen=True)
class WireInterval:
    """One wire's extent along a channel: ``[lo, hi]`` owned by ``net``."""

    net: str
    lo: float
    hi: float

    def __post_init__(self) -> None:
        if self.hi < self.lo:
            raise ValueError(f"interval of net {self.net}: hi < lo")

    def overlaps(self, other: "WireInterval", eps: float = GEOM_EPS) -> bool:
        """True when the intervals share interior extent."""
        return self.lo < other.hi - eps and other.lo < self.hi - eps


@dataclass
class TrackAssignment:
    """Result of left-edge routing one channel.

    Attributes:
        tracks: per-track interval lists (track 0 first).
        density: maximum number of intervals crossing any coordinate — the
            lower bound the assignment achieves.
    """

    tracks: list[list[WireInterval]]
    density: int

    @property
    def n_tracks(self) -> int:
        """Tracks used."""
        return len(self.tracks)

    def track_of(self, net: str) -> int | None:
        """Track index carrying (a segment of) ``net``, or None."""
        for index, track in enumerate(self.tracks):
            if any(iv.net == net for iv in track):
                return index
        return None

    def validate(self) -> list[str]:
        """Problems with the assignment (empty = valid): no two
        overlapping intervals may share a track."""
        problems = []
        for index, track in enumerate(self.tracks):
            for i in range(len(track)):
                for j in range(i + 1, len(track)):
                    if track[i].overlaps(track[j]):
                        problems.append(
                            f"track {index}: nets {track[i].net} and "
                            f"{track[j].net} overlap")
        return problems


def channel_density(intervals: Sequence[WireInterval]) -> int:
    """Maximum number of intervals crossing any single coordinate."""
    events: list[tuple[float, int]] = []
    for iv in intervals:
        events.append((iv.lo, 1))
        events.append((iv.hi, -1))
    # Close before opening at the same coordinate: touching endpoints do
    # not conflict.
    events.sort(key=lambda e: (e[0], e[1]))
    depth = best = 0
    for _coord, delta in events:
        depth += delta
        best = max(best, depth)
    return best


def left_edge(intervals: Sequence[WireInterval]) -> TrackAssignment:
    """Assign intervals to tracks with the left-edge algorithm.

    Intervals are processed by increasing left endpoint; each goes to the
    first existing track whose last interval ends at or before its start,
    else a new track opens.  Without vertical constraints this uses exactly
    ``channel_density(intervals)`` tracks.
    """
    ordered = sorted(intervals, key=lambda iv: (iv.lo, iv.hi))
    tracks: list[list[WireInterval]] = []
    track_ends: list[float] = []
    for iv in ordered:
        placed = False
        for index, end in enumerate(track_ends):
            if end <= iv.lo + GEOM_EPS:
                tracks[index].append(iv)
                track_ends[index] = iv.hi
                placed = True
                break
        if not placed:
            tracks.append([iv])
            track_ends.append(iv.hi)
    return TrackAssignment(tracks=tracks,
                           density=channel_density(ordered))


def channel_intervals(channel: Channel, channel_graph: ChannelGraph,
                      routing: RoutingResult) -> list[WireInterval]:
    """Extract each net's extent along ``channel`` from a routing result.

    A net's interval is the union span of its route edges that run *along*
    the channel inside the channel rect (vertical edges for a vertical
    channel).  Nets merely crossing the channel perpendicular to it don't
    occupy a track and are excluded.
    """
    graph = channel_graph.graph
    along = "h" if channel.orientation == "v" else "v"
    # orientation attr on edges: "h" = horizontal boundary = vertical wire
    spans: dict[str, tuple[float, float]] = {}
    for route in routing.routes:
        lo = hi = None
        for u, v in route.edges:
            if not graph.has_edge(u, v):
                continue
            data = graph.edges[u, v]
            if data["orientation"] != along:
                continue
            rect_u = graph.nodes[u]["rect"]
            rect_v = graph.nodes[v]["rect"]
            span = rect_u.union_bbox(rect_v)
            if not channel.rect.overlaps(span):
                continue
            if channel.orientation == "v":
                seg_lo, seg_hi = span.y, span.y2
            else:
                seg_lo, seg_hi = span.x, span.x2
            lo = seg_lo if lo is None else min(lo, seg_lo)
            hi = seg_hi if hi is None else max(hi, seg_hi)
        if lo is not None and hi is not None and hi - lo > GEOM_EPS:
            spans[route.net] = (lo, hi)
    return [WireInterval(net, lo, hi) for net, (lo, hi) in sorted(spans.items())]


def route_channel(channel: Channel, channel_graph: ChannelGraph,
                  routing: RoutingResult) -> TrackAssignment:
    """Left-edge track assignment for one channel of a routed floorplan."""
    return left_edge(channel_intervals(channel, channel_graph, routing))


def required_width(channel: Channel, channel_graph: ChannelGraph,
                   routing: RoutingResult, pitch: float) -> float:
    """Exact channel width needed for the routed wires: tracks x pitch."""
    assignment = route_channel(channel, channel_graph, routing)
    return assignment.n_tracks * pitch
