"""Generalized pins (section 3.2).

"Instead of considering a center of a module as a generalized pin position we
consider four generalized pins, one on each side."  A generalized pin sits at
the midpoint of a module side; the router may connect a net through whichever
side is cheapest, which is what makes this model "more realistic" than
center-to-center estimates.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.placement import Placement
from repro.netlist.module import Side


@dataclass(frozen=True)
class GeneralizedPin:
    """One generalized pin: a module side's midpoint plus its pin count."""

    module: str
    side: Side
    x: float
    y: float
    n_pins: int

    @property
    def point(self) -> tuple[float, float]:
        """The pin position."""
        return (self.x, self.y)


def generalized_pins(placement: Placement) -> list[GeneralizedPin]:
    """The four generalized pins of a placed module.

    Pin counts follow the module's orientation (a rotated module's left-side
    pins face down, etc.).  Sides with zero pins are still returned — the
    router may use any side, but prefers pinned ones when weighting is
    enabled.
    """
    pins = placement.effective_pins()
    rect = placement.rect
    result = []
    for side in Side:
        px, py = rect.side_midpoint(side.value)
        result.append(GeneralizedPin(module=placement.name, side=side,
                                     x=px, y=py, n_pins=pins.on(side)))
    return result
