"""The covering polygon of a partial floorplan.

Section 3.1 of the paper represents the already-placed modules as a hole-free
rectilinear polygon with a flat bottom ("holes at the bottom of the polygon
are ignored because new modules are added only from the open side of the
chip").  That polygon is the region under the skyline of the placed modules;
this module exposes it with its horizontal-edge structure, which drives the
Figure-4 edge-cut decomposition and the Theorem-1 edge-count bound.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.geometry.rect import GEOM_EPS, Rect
from repro.geometry.skyline import Skyline


@dataclass(frozen=True)
class HorizontalEdge:
    """A horizontal edge of the covering polygon: ``[x1, x2]`` at height ``y``."""

    x1: float
    x2: float
    y: float

    @property
    def length(self) -> float:
        """Horizontal extent of the edge."""
        return self.x2 - self.x1


class CoveringPolygon:
    """The hole-free, flat-bottomed covering polygon of a placed module set.

    The polygon is the region ``{(x, y) : 0 <= y <= skyline(x)}`` over the
    horizontal extent of the placed modules.  It exists purely through its
    skyline; all queries derive from the step structure.
    """

    def __init__(self, skyline: Skyline, n_modules: int) -> None:
        self.skyline = skyline
        #: Number of fixed modules the polygon covers (the ``N`` of Theorem 1).
        self.n_modules = n_modules

    @classmethod
    def from_rects(cls, rects: Iterable[Rect], x_min: float | None = None,
                   x_max: float | None = None) -> "CoveringPolygon":
        """Build the covering polygon of placed module rectangles."""
        rect_list = list(rects)
        sky = Skyline.from_rects(rect_list, x_min=x_min, x_max=x_max)
        return cls(sky, n_modules=len(rect_list))

    # -- structure ---------------------------------------------------------------

    def top_edges(self) -> Sequence[HorizontalEdge]:
        """The polygon's top horizontal edges, one per skyline run with
        positive height, ordered by x."""
        return tuple(
            HorizontalEdge(s.x1, s.x2, s.height)
            for s in self.skyline.steps
            if s.height > GEOM_EPS
        )

    def n_horizontal_edges(self) -> int:
        """Number of horizontal edges ``n`` of the polygon (top edges plus the
        flat bottom).  Theorem 1 bounds this by ``N + 1`` for the paper's
        bottom-up placement discipline."""
        return len(self.top_edges()) + 1  # the flat bottom counts as one edge

    def area(self) -> float:
        """Polygon area (region under the skyline, bottom holes filled)."""
        return self.skyline.area_under()

    def covers(self, rect: Rect, eps: float = GEOM_EPS) -> bool:
        """True when ``rect`` lies entirely inside the polygon."""
        if rect.x < self.skyline.x_min - eps or rect.x2 > self.skyline.x_max + eps:
            return False
        if rect.y < -eps:
            return False
        for s in self.skyline.steps:
            lo = max(s.x1, rect.x)
            hi = min(s.x2, rect.x2)
            if hi - lo > eps and rect.y2 > s.height + eps:
                return False
        return True

    def satisfies_theorem1(self) -> bool:
        """Check the Theorem-1 bound ``n <= N + 1`` on this polygon."""
        return self.n_horizontal_edges() <= self.n_modules + 1
