"""Axis-aligned rectangles.

The floorplanner represents every module placement, covering rectangle, chip
outline, and routing channel as an axis-aligned rectangle anchored at its
lower-left corner, matching the paper's coordinate convention (origin at the
chip's lower-left corner, x to the right, y up).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Iterable, Iterator

#: Tolerance used for all floating-point geometric comparisons.  Floorplan
#: coordinates come out of LP solves and carry ~1e-9 noise; geometry must not
#: report phantom overlaps because of it.
GEOM_EPS = 1e-7


@dataclass(frozen=True)
class Rect:
    """An axis-aligned rectangle anchored at its lower-left corner.

    Attributes:
        x: x coordinate of the lower-left corner.
        y: y coordinate of the lower-left corner.
        w: width (extent along x); must be >= 0.
        h: height (extent along y); must be >= 0.
    """

    x: float
    y: float
    w: float
    h: float

    def __post_init__(self) -> None:
        if self.w < 0 or self.h < 0:
            raise ValueError(f"Rect must have non-negative dimensions, got {self.w}x{self.h}")

    # -- derived coordinates -------------------------------------------------

    @property
    def x2(self) -> float:
        """x coordinate of the right edge."""
        return self.x + self.w

    @property
    def y2(self) -> float:
        """y coordinate of the top edge."""
        return self.y + self.h

    @property
    def cx(self) -> float:
        """x coordinate of the center."""
        return self.x + self.w / 2.0

    @property
    def cy(self) -> float:
        """y coordinate of the center."""
        return self.y + self.h / 2.0

    @property
    def center(self) -> tuple[float, float]:
        """Center point ``(cx, cy)``."""
        return (self.cx, self.cy)

    @property
    def area(self) -> float:
        """Area ``w * h``."""
        return self.w * self.h

    @property
    def perimeter(self) -> float:
        """Perimeter ``2 (w + h)``."""
        return 2.0 * (self.w + self.h)

    @property
    def aspect(self) -> float:
        """Aspect ratio ``w / h`` (``inf`` for degenerate zero-height rects)."""
        if self.h == 0:
            return math.inf
        return self.w / self.h

    def is_degenerate(self, eps: float = GEOM_EPS) -> bool:
        """True if either dimension is (numerically) zero."""
        return self.w <= eps or self.h <= eps

    # -- predicates ----------------------------------------------------------

    def overlaps(self, other: "Rect", eps: float = GEOM_EPS) -> bool:
        """True if the two rectangles share interior area (touching edges do
        not count as overlap)."""
        return (
            self.x < other.x2 - eps
            and other.x < self.x2 - eps
            and self.y < other.y2 - eps
            and other.y < self.y2 - eps
        )

    def contains_point(self, px: float, py: float, eps: float = GEOM_EPS) -> bool:
        """True if ``(px, py)`` lies inside or on the boundary."""
        return (
            self.x - eps <= px <= self.x2 + eps
            and self.y - eps <= py <= self.y2 + eps
        )

    def contains_rect(self, other: "Rect", eps: float = GEOM_EPS) -> bool:
        """True if ``other`` lies entirely inside (or on the boundary of) this
        rectangle."""
        return (
            self.x - eps <= other.x
            and self.y - eps <= other.y
            and other.x2 <= self.x2 + eps
            and other.y2 <= self.y2 + eps
        )

    def touches(self, other: "Rect", eps: float = GEOM_EPS) -> bool:
        """True if the rectangles share boundary but no interior area."""
        if self.overlaps(other, eps):
            return False
        x_gap = max(other.x - self.x2, self.x - other.x2)
        y_gap = max(other.y - self.y2, self.y - other.y2)
        return x_gap <= eps and y_gap <= eps

    # -- constructive operations ----------------------------------------------

    def intersection(self, other: "Rect") -> "Rect | None":
        """The overlapping region, or None when the interiors are disjoint."""
        x1 = max(self.x, other.x)
        y1 = max(self.y, other.y)
        x2 = min(self.x2, other.x2)
        y2 = min(self.y2, other.y2)
        if x2 - x1 <= GEOM_EPS or y2 - y1 <= GEOM_EPS:
            return None
        return Rect(x1, y1, x2 - x1, y2 - y1)

    def overlap_area(self, other: "Rect") -> float:
        """Area of the overlapping region (0.0 when disjoint)."""
        inter = self.intersection(other)
        return inter.area if inter is not None else 0.0

    def union_bbox(self, other: "Rect") -> "Rect":
        """The smallest rectangle covering both."""
        x1 = min(self.x, other.x)
        y1 = min(self.y, other.y)
        x2 = max(self.x2, other.x2)
        y2 = max(self.y2, other.y2)
        return Rect(x1, y1, x2 - x1, y2 - y1)

    def translated(self, dx: float, dy: float) -> "Rect":
        """A copy moved by ``(dx, dy)``."""
        return replace(self, x=self.x + dx, y=self.y + dy)

    def moved_to(self, x: float, y: float) -> "Rect":
        """A copy whose lower-left corner is at ``(x, y)``."""
        return replace(self, x=x, y=y)

    def rotated(self) -> "Rect":
        """A copy rotated by 90 degrees about its lower-left corner
        (width and height swapped, anchor unchanged)."""
        return Rect(self.x, self.y, self.h, self.w)

    def inflated(self, left: float, bottom: float, right: float, top: float) -> "Rect":
        """A copy grown outward by per-side margins (used for routing
        envelopes; see section 3.2 of the paper)."""
        return Rect(
            self.x - left,
            self.y - bottom,
            self.w + left + right,
            self.h + bottom + top,
        )

    def side_midpoint(self, side: str) -> tuple[float, float]:
        """Midpoint of a side, one of ``left/right/bottom/top``.

        The paper places one *generalized pin* per module side; this is where
        that pin sits.
        """
        if side == "left":
            return (self.x, self.cy)
        if side == "right":
            return (self.x2, self.cy)
        if side == "bottom":
            return (self.cx, self.y)
        if side == "top":
            return (self.cx, self.y2)
        raise ValueError(f"unknown side {side!r}")


def bounding_box(rects: Iterable[Rect]) -> Rect:
    """The smallest rectangle covering all of ``rects``.

    Raises:
        ValueError: when ``rects`` is empty.
    """
    it: Iterator[Rect] = iter(rects)
    try:
        box = next(it)
    except StopIteration:
        raise ValueError("bounding_box of an empty collection") from None
    for r in it:
        box = box.union_bbox(r)
    return box


def total_area(rects: Iterable[Rect]) -> float:
    """Sum of rectangle areas (overlaps counted twice)."""
    return sum(r.area for r in rects)


def any_overlap(rects: list[Rect], eps: float = GEOM_EPS) -> tuple[int, int] | None:
    """Find one overlapping pair among ``rects``.

    Returns the index pair of the first overlapping pair found, or None when
    the set is pairwise interior-disjoint.  O(n^2) — the floorplanner's module
    counts (tens) make a sweep-line unnecessary.
    """
    for i in range(len(rects)):
        for j in range(i + 1, len(rects)):
            if rects[i].overlaps(rects[j], eps):
                return (i, j)
    return None
