"""Planar rectilinear geometry substrate.

This subpackage provides the geometric primitives the floorplanner is built
on: axis-aligned rectangles (:class:`~repro.geometry.rect.Rect`), 1-D
intervals, the skyline (upper contour) of a placed module set, the covering
polygon of a partial floorplan, and the covering-rectangle decomposition of
Figure 4 / Theorems 1-2 of the paper.
"""

from repro.geometry.rect import Rect
from repro.geometry.interval import Interval, merge_intervals
from repro.geometry.skyline import Skyline, SkylineStep
from repro.geometry.polygon import CoveringPolygon, HorizontalEdge
from repro.geometry.covering import (
    covering_rectangles,
    horizontal_cut_decomposition,
    vertical_step_decomposition,
    merge_covering_rectangles,
)

__all__ = [
    "Rect",
    "Interval",
    "merge_intervals",
    "Skyline",
    "SkylineStep",
    "CoveringPolygon",
    "HorizontalEdge",
    "covering_rectangles",
    "horizontal_cut_decomposition",
    "vertical_step_decomposition",
    "merge_covering_rectangles",
]
