"""Skyline (upper contour) of a placed module set.

The paper's successive-augmentation procedure replaces the partial floorplan
by a covering polygon whose bottom holes are filled, "because new modules are
added only from the open side of the chip" (section 3.1).  That hole-filled
polygon is exactly the region under the *skyline* — the upper envelope of the
placed rectangles over the chip width.  This module computes and manipulates
that step function.

The contour is stored as two parallel numpy arrays — ``k + 1`` breakpoints
and ``k`` run heights — so :meth:`Skyline.add_rect` and every query are
vectorized row operations instead of per-step python list churn.  The
:class:`SkylineStep` view is materialized lazily for callers that iterate
runs.  ``tests/test_vectorized_parity.py`` pins this representation against
a scalar reference implementation of the same epsilon semantics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.geometry.rect import GEOM_EPS, Rect


@dataclass(frozen=True)
class SkylineStep:
    """One horizontal run of the skyline: height ``height`` over ``[x1, x2]``."""

    x1: float
    x2: float
    height: float

    def __post_init__(self) -> None:
        if self.x2 <= self.x1:
            raise ValueError(f"SkylineStep needs x2 > x1, got [{self.x1}, {self.x2}]")

    @property
    def width(self) -> float:
        """Horizontal extent of the step."""
        return self.x2 - self.x1


class Skyline:
    """The upper contour of a set of rectangles over a base span.

    The skyline is a minimal sequence of runs (adjacent equal-height runs
    merged), sorted by x, exactly tiling ``[x_min, x_max]``.  Heights are 0
    where no rectangle covers the span.  Internally the runs live in two
    arrays: ``_x`` holds the ``k + 1`` breakpoints and ``_h`` the ``k`` run
    heights; run ``i`` spans ``[_x[i], _x[i + 1]]``.
    """

    def __init__(self, x_min: float, x_max: float, eps: float = GEOM_EPS) -> None:
        if x_max <= x_min:
            raise ValueError(f"Skyline needs x_max > x_min, got [{x_min}, {x_max}]")
        self.x_min = x_min
        self.x_max = x_max
        self.eps = eps
        self._x = np.array([x_min, x_max], dtype=np.float64)
        self._h = np.array([0.0], dtype=np.float64)
        self._steps_view: tuple[SkylineStep, ...] | None = None

    # -- constructors ----------------------------------------------------------

    @classmethod
    def from_rects(cls, rects: Iterable[Rect], x_min: float | None = None,
                   x_max: float | None = None, eps: float = GEOM_EPS) -> "Skyline":
        """Build the skyline of ``rects`` over ``[x_min, x_max]``.

        When the span is omitted it defaults to the rects' horizontal extent.
        """
        rect_list = list(rects)
        if not rect_list and (x_min is None or x_max is None):
            raise ValueError("from_rects needs either rects or an explicit span")
        lo = min(r.x for r in rect_list) if x_min is None else x_min
        hi = max(r.x2 for r in rect_list) if x_max is None else x_max
        sky = cls(lo, hi, eps=eps)
        for r in rect_list:
            sky.add_rect(r)
        return sky

    # -- queries ----------------------------------------------------------------

    @property
    def breakpoints(self) -> np.ndarray:
        """The ``k + 1`` run breakpoints (read-only view)."""
        view = self._x.view()
        view.flags.writeable = False
        return view

    @property
    def heights(self) -> np.ndarray:
        """The ``k`` run heights (read-only view)."""
        view = self._h.view()
        view.flags.writeable = False
        return view

    @property
    def steps(self) -> Sequence[SkylineStep]:
        """The merged, sorted runs of the skyline."""
        if self._steps_view is None:
            x, h = self._x, self._h
            self._steps_view = tuple(
                SkylineStep(float(x[i]), float(x[i + 1]), float(h[i]))
                for i in range(len(h)))
        return self._steps_view

    def height_at(self, x: float) -> float:
        """Skyline height at coordinate ``x`` (max of the two runs at a
        breakpoint)."""
        if not (self.x_min - self.eps <= x <= self.x_max + self.eps):
            raise ValueError(f"x={x} outside skyline span [{self.x_min}, {self.x_max}]")
        mask = (self._x[:-1] - self.eps <= x) & (x <= self._x[1:] + self.eps)
        if not mask.any():
            return 0.0
        return max(0.0, float(self._h[mask].max()))

    def max_height(self) -> float:
        """The tallest point of the skyline."""
        return float(self._h.max())

    def min_height(self) -> float:
        """The lowest point of the skyline."""
        return float(self._h.min())

    def distinct_heights(self) -> list[float]:
        """Sorted distinct step heights (epsilon-deduplicated)."""
        ordered = np.sort(self._h)
        keep = _chained_keep(ordered, self.eps)
        return [float(v) for v in ordered[keep]]

    def area_under(self) -> float:
        """Area of the region under the skyline (the covering polygon's area,
        bottom holes included)."""
        # Sequential accumulation (not np.dot's pairwise sum) keeps the
        # result bit-identical to the scalar per-step loop.
        return float(sum((np.diff(self._x) * self._h).tolist()))

    def has_valley(self) -> bool:
        """True when some step is lower than both of its neighbors.

        Augmentation-produced skylines with valleys still decompose correctly,
        but the Theorem-2 rectangle-count bound is stated for the paper's
        staircase polygons; tests use this predicate to classify cases.
        """
        h = self._h
        if len(h) < 3:
            return False
        mid, left, right = h[1:-1], h[:-2], h[2:]
        return bool(((mid < left - self.eps) & (mid < right - self.eps)).any())

    def n_horizontal_edges(self) -> int:
        """Number of horizontal edges of the covering polygon (the ``n`` of
        Theorem 1): one per merged run with positive height, plus runs at
        height 0 contribute the chip's bottom line segments."""
        return len(self._h)

    # -- mutation ---------------------------------------------------------------

    def add_rect(self, rect: Rect) -> None:
        """Raise the skyline to at least ``rect.y2`` over ``[rect.x, rect.x2]``.

        Only the part of the rect inside the skyline span matters; a rect
        entirely outside the span is ignored.
        """
        lo = max(rect.x, self.x_min)
        hi = min(rect.x2, self.x_max)
        if hi - lo <= self.eps:
            return
        top = rect.y2
        eps = self.eps
        x, h = self._x, self._h
        # A run is touched when it overlaps (lo, hi) by more than eps; the
        # runs tile the span, so the touched runs are one contiguous block
        # and only its first/last run can stick out past lo/hi.
        touched = (x[1:] > lo + eps) & (x[:-1] < hi - eps)
        idx = np.flatnonzero(touched)
        if idx.size == 0:
            return
        t0, t1 = int(idx[0]), int(idx[-1])
        has_left = x[t0] < lo - eps
        has_right = x[t1 + 1] > hi + eps
        # Sub-epsilon slivers at lo/hi are absorbed into the raised middle
        # parts so the runs keep tiling the span exactly.
        xs = [x[:t0 + 1]]
        hs = [h[:t0]]
        if has_left:
            xs.append([lo])
            hs.append(h[t0:t0 + 1])
        hs.append(np.maximum(h[t0:t1 + 1], top))
        xs.append(x[t0 + 1:t1 + 1])
        if has_right:
            xs.append([hi])
            hs.append(h[t1:t1 + 1])
        xs.append(x[t1 + 1:])
        hs.append(h[t1 + 1:])
        new_x = np.concatenate(xs)
        new_h = np.concatenate(hs)
        # Merge adjacent runs with numerically equal heights (each run is
        # compared against the height of its merge group's first run).
        keep = _chained_keep(new_h, eps)
        self._h = new_h[keep]
        self._x = np.concatenate([new_x[:-1][keep], new_x[-1:]])
        self._steps_view = None

    def raised_copy(self, rect: Rect) -> "Skyline":
        """A new skyline with ``rect`` added."""
        sky = Skyline(self.x_min, self.x_max, eps=self.eps)
        sky._x = self._x.copy()
        sky._h = self._h.copy()
        sky.add_rect(rect)
        return sky


def _chained_keep(values: np.ndarray, eps: float) -> np.ndarray:
    """Boolean mask of merge-group leaders in ``values``.

    A value joins the current group while it is within ``eps`` of the
    group's *first* value (the chained comparison of the scalar merge loop);
    otherwise it starts a new group.  When every near-pair is exactly equal
    — the overwhelmingly common case, since raised runs share float-identical
    heights — the adjacent-difference test is equivalent and fully
    vectorized; otherwise a short python loop resolves the chains.
    """
    n = len(values)
    if n <= 1:
        return np.ones(n, dtype=bool)
    diff = np.abs(np.diff(values))
    near = diff <= eps
    if not near.any():
        return np.ones(n, dtype=bool)
    if not diff[near].any():
        return np.concatenate([[True], ~near])
    keep = np.zeros(n, dtype=bool)
    keep[0] = True
    anchor = values[0]
    for i in range(1, n):
        if abs(values[i] - anchor) > eps:
            keep[i] = True
            anchor = values[i]
    return keep
