"""Skyline (upper contour) of a placed module set.

The paper's successive-augmentation procedure replaces the partial floorplan
by a covering polygon whose bottom holes are filled, "because new modules are
added only from the open side of the chip" (section 3.1).  That hole-filled
polygon is exactly the region under the *skyline* — the upper envelope of the
placed rectangles over the chip width.  This module computes and manipulates
that step function.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.geometry.rect import GEOM_EPS, Rect


@dataclass(frozen=True)
class SkylineStep:
    """One horizontal run of the skyline: height ``height`` over ``[x1, x2]``."""

    x1: float
    x2: float
    height: float

    def __post_init__(self) -> None:
        if self.x2 <= self.x1:
            raise ValueError(f"SkylineStep needs x2 > x1, got [{self.x1}, {self.x2}]")

    @property
    def width(self) -> float:
        """Horizontal extent of the step."""
        return self.x2 - self.x1


class Skyline:
    """The upper contour of a set of rectangles over a base span.

    The skyline is stored as a minimal list of :class:`SkylineStep` runs
    (adjacent equal-height runs merged), sorted by x, exactly covering
    ``[x_min, x_max]``.  Heights are 0 where no rectangle covers the span.
    """

    def __init__(self, x_min: float, x_max: float, eps: float = GEOM_EPS) -> None:
        if x_max <= x_min:
            raise ValueError(f"Skyline needs x_max > x_min, got [{x_min}, {x_max}]")
        self.x_min = x_min
        self.x_max = x_max
        self.eps = eps
        self._steps: list[SkylineStep] = [SkylineStep(x_min, x_max, 0.0)]

    # -- constructors ----------------------------------------------------------

    @classmethod
    def from_rects(cls, rects: Iterable[Rect], x_min: float | None = None,
                   x_max: float | None = None, eps: float = GEOM_EPS) -> "Skyline":
        """Build the skyline of ``rects`` over ``[x_min, x_max]``.

        When the span is omitted it defaults to the rects' horizontal extent.
        """
        rect_list = list(rects)
        if not rect_list and (x_min is None or x_max is None):
            raise ValueError("from_rects needs either rects or an explicit span")
        lo = min(r.x for r in rect_list) if x_min is None else x_min
        hi = max(r.x2 for r in rect_list) if x_max is None else x_max
        sky = cls(lo, hi, eps=eps)
        for r in rect_list:
            sky.add_rect(r)
        return sky

    # -- queries ----------------------------------------------------------------

    @property
    def steps(self) -> Sequence[SkylineStep]:
        """The merged, sorted runs of the skyline."""
        return tuple(self._steps)

    def height_at(self, x: float) -> float:
        """Skyline height at coordinate ``x`` (max of the two runs at a
        breakpoint)."""
        if not (self.x_min - self.eps <= x <= self.x_max + self.eps):
            raise ValueError(f"x={x} outside skyline span [{self.x_min}, {self.x_max}]")
        best = 0.0
        for s in self._steps:
            if s.x1 - self.eps <= x <= s.x2 + self.eps:
                best = max(best, s.height)
        return best

    def max_height(self) -> float:
        """The tallest point of the skyline."""
        return max(s.height for s in self._steps)

    def min_height(self) -> float:
        """The lowest point of the skyline."""
        return min(s.height for s in self._steps)

    def distinct_heights(self) -> list[float]:
        """Sorted distinct step heights (epsilon-deduplicated)."""
        heights: list[float] = []
        for s in sorted(self._steps, key=lambda st: st.height):
            if not heights or s.height - heights[-1] > self.eps:
                heights.append(s.height)
        return heights

    def area_under(self) -> float:
        """Area of the region under the skyline (the covering polygon's area,
        bottom holes included)."""
        return sum(s.width * s.height for s in self._steps)

    def has_valley(self) -> bool:
        """True when some step is lower than both of its neighbors.

        Augmentation-produced skylines with valleys still decompose correctly,
        but the Theorem-2 rectangle-count bound is stated for the paper's
        staircase polygons; tests use this predicate to classify cases.
        """
        for i in range(1, len(self._steps) - 1):
            left = self._steps[i - 1].height
            mid = self._steps[i].height
            right = self._steps[i + 1].height
            if mid < left - self.eps and mid < right - self.eps:
                return True
        return False

    def n_horizontal_edges(self) -> int:
        """Number of horizontal edges of the covering polygon (the ``n`` of
        Theorem 1): one per merged run with positive height, plus runs at
        height 0 contribute the chip's bottom line segments."""
        return len(self._steps)

    # -- mutation ---------------------------------------------------------------

    def add_rect(self, rect: Rect) -> None:
        """Raise the skyline to at least ``rect.y2`` over ``[rect.x, rect.x2]``.

        Only the part of the rect inside the skyline span matters; a rect
        entirely outside the span is ignored.
        """
        lo = max(rect.x, self.x_min)
        hi = min(rect.x2, self.x_max)
        if hi - lo <= self.eps:
            return
        top = rect.y2
        new_steps: list[SkylineStep] = []
        for s in self._steps:
            if s.x2 <= lo + self.eps or s.x1 >= hi - self.eps:
                new_steps.append(s)
                continue
            # Split into (left, middle, right); sub-epsilon slivers are
            # absorbed into the middle part so the steps keep tiling the
            # span exactly.
            has_left = s.x1 < lo - self.eps
            has_right = s.x2 > hi + self.eps
            if has_left:
                new_steps.append(SkylineStep(s.x1, lo, s.height))
            mid_lo = lo if has_left else s.x1
            mid_hi = hi if has_right else s.x2
            new_steps.append(SkylineStep(mid_lo, mid_hi, max(s.height, top)))
            if has_right:
                new_steps.append(SkylineStep(hi, s.x2, s.height))
        self._steps = _merge_steps(new_steps, self.eps)

    def raised_copy(self, rect: Rect) -> "Skyline":
        """A new skyline with ``rect`` added."""
        sky = Skyline(self.x_min, self.x_max, eps=self.eps)
        sky._steps = list(self._steps)
        sky.add_rect(rect)
        return sky


def _merge_steps(steps: list[SkylineStep], eps: float) -> list[SkylineStep]:
    """Sort runs by x and merge adjacent runs with (numerically) equal
    heights."""
    steps = sorted(steps, key=lambda s: s.x1)
    merged: list[SkylineStep] = []
    for s in steps:
        if merged and abs(merged[-1].height - s.height) <= eps \
                and abs(merged[-1].x2 - s.x1) <= eps:
            last = merged[-1]
            merged[-1] = SkylineStep(last.x1, s.x2, last.height)
        else:
            merged.append(s)
    return merged
