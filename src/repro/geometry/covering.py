"""Covering-rectangle decomposition (Figure 4, Theorems 1-2).

Successive augmentation replaces the ``N`` already-placed modules by ``d <= N``
fixed *covering rectangles*, shrinking the integer-variable count of each MILP
subproblem.  The paper's algorithm cuts the covering polygon with horizontal
edge-cut lines from the bottom up (Figure 4c/4d); Theorem 2 shows the cut
count is at most ``n - 1`` where ``n`` is the polygon's horizontal edge count,
and the corollary gives ``N* <= N``.

Three decompositions are provided:

* :func:`horizontal_cut_decomposition` — the paper's Figure-4 algorithm,
  generalized to skylines with valleys (each slab may then contribute more
  than one rectangle; for the paper's staircase polygons the Theorem-2 bound
  holds and is asserted in tests).
* :func:`vertical_step_decomposition` — one full-height rectangle per skyline
  run; trivially at most one rectangle per run.
* :func:`merge_covering_rectangles` — the paper's closing remark that a set of
  *overlapping* partitions can reduce the count further: every covering
  rectangle is extended down to the chip bottom (still inside the polygon),
  after which rectangles contained in others are dropped.

All three operate on the skyline's breakpoint/height arrays directly: run
extraction, containment screening, and the per-slab maximal-run scan are
numpy mask operations rather than per-step python loops (see the vectorized
parity suite).
"""

from __future__ import annotations

from typing import Iterable, Literal

import numpy as np

from repro.geometry.rect import GEOM_EPS, Rect
from repro.geometry.skyline import Skyline

DecompositionStyle = Literal["horizontal", "vertical"]


def horizontal_cut_decomposition(skyline: Skyline, eps: float = GEOM_EPS) -> list[Rect]:
    """Decompose the region under ``skyline`` by horizontal edge-cuts.

    Distinct step heights are visited bottom-up; the slab between consecutive
    heights is cut into one rectangle per maximal run of steps at least as
    tall as the slab top (exactly one run for staircase skylines, hence the
    Theorem-2 count of at most ``n - 1``).

    Returns an exact, interior-disjoint cover of the region under the skyline
    (zero-height regions excluded).
    """
    heights = [h for h in skyline.distinct_heights() if h > eps]
    x = skyline.breakpoints
    step_h = skyline.heights
    rects: list[Rect] = []
    prev = 0.0
    for h in heights:
        # Within the slab [prev, h], the region exists where skyline >= h.
        # Maximal runs of qualifying steps are the mask's rising/falling
        # edges; each run [x[a], x[b]] becomes one slab rectangle.
        tall = step_h >= h - eps
        edges = np.diff(np.concatenate([[False], tall, [False]]).astype(np.int8))
        starts = np.flatnonzero(edges == 1)
        ends = np.flatnonzero(edges == -1)
        for a, b in zip(starts, ends):
            rects.append(Rect(float(x[a]), prev, float(x[b] - x[a]), h - prev))
        prev = h
    return rects


def vertical_step_decomposition(skyline: Skyline, eps: float = GEOM_EPS) -> list[Rect]:
    """One full-height rectangle per skyline run with positive height."""
    x = skyline.breakpoints
    h = skyline.heights
    keep = np.flatnonzero(h > eps)
    return [
        Rect(float(x[i]), 0.0, float(x[i + 1] - x[i]), float(h[i]))
        for i in keep
    ]


def merge_covering_rectangles(rects: Iterable[Rect], eps: float = GEOM_EPS) -> list[Rect]:
    """Reduce a covering-rectangle set by allowing overlaps.

    Every rectangle produced by the horizontal decomposition spans an x-range
    over which the skyline is at least its top edge, so extending it down to
    ``y = 0`` keeps it inside the covering polygon.  After extension,
    rectangles contained in another are redundant and dropped.

    The result still covers the same region (it is a superset union-wise of
    the input) but typically with fewer rectangles — the paper's "overlapping
    partitions" refinement.
    """
    extended = [Rect(r.x, 0.0, r.w, r.y2) for r in rects]
    # Drop exact duplicates and contained rectangles; prefer keeping taller /
    # wider rects by scanning in decreasing area order.  Containment against
    # the kept set is one vectorized comparison per candidate.
    extended.sort(key=lambda r: r.area, reverse=True)
    if not extended:
        return []
    kept: list[Rect] = []
    kx = np.empty(len(extended))
    ky = np.empty(len(extended))
    kx2 = np.empty(len(extended))
    ky2 = np.empty(len(extended))
    for r in extended:
        n = len(kept)
        contained = (
            (kx[:n] - eps <= r.x) & (ky[:n] - eps <= r.y)
            & (r.x2 <= kx2[:n] + eps) & (r.y2 <= ky2[:n] + eps)
        )
        if not contained.any():
            kx[n], ky[n], kx2[n], ky2[n] = r.x, r.y, r.x2, r.y2
            kept.append(r)
    return kept


def covering_rectangles(placed: Iterable[Rect], x_min: float | None = None,
                        x_max: float | None = None,
                        style: DecompositionStyle = "horizontal",
                        merge_overlapping: bool = True) -> list[Rect]:
    """Covering rectangles for a placed module set (section 3.1 entry point).

    Args:
        placed: the fixed modules of the partial floorplan.
        x_min, x_max: horizontal span of the covering polygon; defaults to the
            modules' extent.  The augmentation loop passes the chip span so
            that side notches are represented faithfully.
        style: ``"horizontal"`` for the paper's edge-cut decomposition,
            ``"vertical"`` for the per-run variant.
        merge_overlapping: apply :func:`merge_covering_rectangles` afterwards.

    Returns:
        Fixed rectangles whose union contains every placed module and is
        contained in the region under the placed modules' skyline.
    """
    placed_list = list(placed)
    if not placed_list:
        return []
    sky = Skyline.from_rects(placed_list, x_min=x_min, x_max=x_max)
    if style == "horizontal":
        rects = horizontal_cut_decomposition(sky)
    elif style == "vertical":
        rects = vertical_step_decomposition(sky)
    else:
        raise ValueError(f"unknown decomposition style {style!r}")
    if merge_overlapping:
        rects = merge_covering_rectangles(rects)
    return rects
