"""1-D closed intervals.

Used by the skyline and channel-extraction code: channel spans, horizontal
edge extents, and step runs are all intervals on a single axis.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.geometry.rect import GEOM_EPS


@dataclass(frozen=True)
class Interval:
    """A closed interval ``[lo, hi]`` with ``lo <= hi``."""

    lo: float
    hi: float

    def __post_init__(self) -> None:
        if self.hi < self.lo:
            raise ValueError(f"Interval requires lo <= hi, got [{self.lo}, {self.hi}]")

    @property
    def length(self) -> float:
        """Extent ``hi - lo``."""
        return self.hi - self.lo

    @property
    def mid(self) -> float:
        """Midpoint."""
        return (self.lo + self.hi) / 2.0

    def is_empty(self, eps: float = GEOM_EPS) -> bool:
        """True when the interval has (numerically) zero length."""
        return self.length <= eps

    def contains(self, v: float, eps: float = GEOM_EPS) -> bool:
        """True when ``v`` lies inside the interval (inclusive)."""
        return self.lo - eps <= v <= self.hi + eps

    def contains_interval(self, other: "Interval", eps: float = GEOM_EPS) -> bool:
        """True when ``other`` lies entirely inside this interval."""
        return self.lo - eps <= other.lo and other.hi <= self.hi + eps

    def overlaps(self, other: "Interval", eps: float = GEOM_EPS) -> bool:
        """True when the interiors intersect (touching endpoints don't count)."""
        return self.lo < other.hi - eps and other.lo < self.hi - eps

    def touches_or_overlaps(self, other: "Interval", eps: float = GEOM_EPS) -> bool:
        """True when the intervals intersect or share an endpoint."""
        return self.lo <= other.hi + eps and other.lo <= self.hi + eps

    def intersection(self, other: "Interval") -> "Interval | None":
        """The common sub-interval, or None when interiors are disjoint."""
        lo = max(self.lo, other.lo)
        hi = min(self.hi, other.hi)
        if hi - lo <= GEOM_EPS:
            return None
        return Interval(lo, hi)

    def hull(self, other: "Interval") -> "Interval":
        """The smallest interval covering both."""
        return Interval(min(self.lo, other.lo), max(self.hi, other.hi))


def merge_intervals(intervals: Iterable[Interval], eps: float = GEOM_EPS) -> list[Interval]:
    """Merge touching/overlapping intervals into maximal disjoint ones.

    The result is sorted by ``lo`` and pairwise disjoint (no touching either).
    """
    items = sorted(intervals, key=lambda iv: (iv.lo, iv.hi))
    merged: list[Interval] = []
    for iv in items:
        if merged and iv.lo <= merged[-1].hi + eps:
            last = merged[-1]
            merged[-1] = Interval(last.lo, max(last.hi, iv.hi))
        else:
            merged.append(iv)
    return merged


def total_length(intervals: Iterable[Interval]) -> float:
    """Total length covered (overlaps counted once)."""
    return sum(iv.length for iv in merge_intervals(intervals))


def complement_within(intervals: Iterable[Interval], span: Interval,
                      eps: float = GEOM_EPS) -> list[Interval]:
    """The parts of ``span`` not covered by ``intervals``.

    Used to find free channel spans between module edges.
    """
    covered = merge_intervals(
        iv for interval in intervals
        if (iv := interval.intersection(span)) is not None
    )
    gaps: list[Interval] = []
    cursor = span.lo
    for iv in covered:
        if iv.lo - cursor > eps:
            gaps.append(Interval(cursor, iv.lo))
        cursor = max(cursor, iv.hi)
    if span.hi - cursor > eps:
        gaps.append(Interval(cursor, span.hi))
    return gaps
