"""Independent geometric floorplan validation.

The MILP says a floorplan is legal; this module re-derives legality from the
realized rectangles alone, with no shared code path through the formulation:

* every module placed exactly once, pairwise interior-disjoint, inside the
  chip;
* each placement's envelope contains its module rectangle;
* rigid dimensions consistent with the recorded rotation flag (eq. (4));
* flexible modules conserve their area invariant ``w h = S`` and respect
  their aspect-ratio bounds (eq. (6)-(8));
* covering rectangles (section 3.1 / Figure 4) actually cover every placed
  rectangle, stay inside the covering polygon, and respect the Theorem 1-2
  counting bounds.

All checks report :class:`~repro.check.certificate.Violation` records of
kind ``"geometry"`` and never raise.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Sequence

from repro.check.certificate import Violation
from repro.geometry.polygon import CoveringPolygon
from repro.geometry.rect import Rect

if TYPE_CHECKING:
    from repro.core.floorplanner import Floorplan
    from repro.core.placement import Placement

#: Default geometric tolerance for the validator: looser than GEOM_EPS
#: because realized coordinates pass through an LP and a decode step.
CHECK_EPS = 1e-6


@dataclass
class GeometryReport:
    """Outcome of the geometric validation of one floorplan (or one
    augmentation step's cover)."""

    n_placements: int = 0
    n_pairs_checked: int = 0
    n_cover_rects: int = 0
    violations: list[Violation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when no violations were found."""
        return not self.violations

    def to_dict(self) -> dict[str, Any]:
        """A JSON-safe representation."""
        return {
            "n_placements": self.n_placements,
            "n_pairs_checked": self.n_pairs_checked,
            "n_cover_rects": self.n_cover_rects,
            "ok": self.ok,
            "violations": [v.to_dict() for v in self.violations],
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "GeometryReport":
        """Rebuild a report from :meth:`to_dict` output."""
        return cls(
            n_placements=data.get("n_placements", 0),
            n_pairs_checked=data.get("n_pairs_checked", 0),
            n_cover_rects=data.get("n_cover_rects", 0),
            violations=[Violation.from_dict(v)
                        for v in data.get("violations", [])],
        )


# ---------------------------------------------------------------------------
# rectangle-cover arithmetic
# ---------------------------------------------------------------------------

def uncovered_area(target: Rect, cover: Sequence[Rect],
                   eps: float = CHECK_EPS) -> float:
    """Area of ``target`` not covered by the union of ``cover``.

    Exact for axis-aligned rectangles via coordinate compression: the target
    is cut into the grid induced by all rectangle edges and each cell is
    covered iff its center lies in some cover rectangle.
    """
    if target.area <= eps:
        return 0.0
    xs = {target.x, target.x2}
    ys = {target.y, target.y2}
    for r in cover:
        for x in (r.x, r.x2):
            if target.x < x < target.x2:
                xs.add(x)
        for y in (r.y, r.y2):
            if target.y < y < target.y2:
                ys.add(y)
    xs_sorted = sorted(xs)
    ys_sorted = sorted(ys)
    missing = 0.0
    for x1, x2 in zip(xs_sorted, xs_sorted[1:]):
        cx = (x1 + x2) / 2.0
        for y1, y2 in zip(ys_sorted, ys_sorted[1:]):
            cy = (y1 + y2) / 2.0
            if not any(r.x - eps <= cx <= r.x2 + eps
                       and r.y - eps <= cy <= r.y2 + eps for r in cover):
                missing += (x2 - x1) * (y2 - y1)
    return missing


def check_cover(placed: Sequence[Rect], obstacles: Sequence[Rect], *,
                x_min: float, x_max: float,
                eps: float = CHECK_EPS) -> GeometryReport:
    """Validate a covering-rectangle set against the rectangles it replaces.

    Checks (section 3.1, Figure 4, Theorems 1-2):

    * every placed rectangle is fully covered by the union of the covering
      rectangles (nothing the MILP must avoid is forgotten);
    * every covering rectangle stays inside the covering polygon (nothing
      is blocked that the polygon leaves open);
    * for staircase polygons (no valleys), the Theorem-2 count bound
      ``d <= n - 1`` and the corollary ``d <= N``.
    """
    report = GeometryReport(n_placements=len(placed),
                            n_cover_rects=len(obstacles))
    if not placed:
        if obstacles:
            report.violations.append(Violation(
                "geometry", "cover", float(len(obstacles)),
                "covering rectangles present with nothing placed"))
        return report
    polygon = CoveringPolygon.from_rects(placed, x_min=x_min, x_max=x_max)

    for i, rect in enumerate(placed):
        missing = uncovered_area(rect, obstacles, eps)
        if missing > eps * max(1.0, rect.area):
            report.violations.append(Violation(
                "geometry", f"cover[{i}]", missing,
                f"placed rect {i} at ({rect.x:.6g}, {rect.y:.6g}) "
                f"{rect.w:.6g}x{rect.h:.6g} has {missing:.3g} area "
                f"uncovered by the covering rectangles"))

    for k, obs in enumerate(obstacles):
        if not polygon.covers(obs, eps):
            report.violations.append(Violation(
                "geometry", f"obstacle[{k}]", obs.area,
                f"covering rect {k} at ({obs.x:.6g}, {obs.y:.6g}) "
                f"{obs.w:.6g}x{obs.h:.6g} pokes outside the covering "
                f"polygon"))

    if not polygon.skyline.has_valley():
        bound = max(1, polygon.n_horizontal_edges() - 1)
        if len(obstacles) > bound:
            report.violations.append(Violation(
                "geometry", "theorem2", float(len(obstacles) - bound),
                f"{len(obstacles)} covering rectangles exceed the "
                f"Theorem-2 bound n - 1 = {bound}"))
        if polygon.satisfies_theorem1() and len(obstacles) > max(1, len(placed)):
            report.violations.append(Violation(
                "geometry", "corollary", float(len(obstacles) - len(placed)),
                f"{len(obstacles)} covering rectangles exceed the placed "
                f"module count {len(placed)}"))
    return report


# ---------------------------------------------------------------------------
# placement validation
# ---------------------------------------------------------------------------

def check_placements(placements: Sequence["Placement"], chip: Rect, *,
                     eps: float = CHECK_EPS,
                     check_chip_height: bool = True) -> GeometryReport:
    """Validate realized placements independently of the formulation.

    Args:
        placements: the placements to validate.
        chip: the chip rectangle; module rects must lie inside it.
        eps: geometric tolerance (scaled by feature size where sensible).
        check_chip_height: also require each rect below the chip top (off
            for mid-augmentation windows, where the final height is not yet
            known).
    """
    report = GeometryReport(n_placements=len(placements))
    rects = [p.rect for p in placements]
    names = [p.name for p in placements]

    for i in range(len(rects)):
        for j in range(i + 1, len(rects)):
            report.n_pairs_checked += 1
            overlap = rects[i].overlap_area(rects[j])
            scale = eps * max(1.0, min(rects[i].area, rects[j].area))
            if overlap > scale:
                report.violations.append(Violation(
                    "geometry", f"{names[i]}|{names[j]}", overlap,
                    f"modules {names[i]} and {names[j]} overlap "
                    f"(area {overlap:.4g})"))

    for p in placements:
        _check_one_placement(p, chip, eps, check_chip_height, report)
    return report


def _check_one_placement(p: "Placement", chip: Rect, eps: float,
                         check_chip_height: bool,
                         report: GeometryReport) -> None:
    rect = p.rect
    span = max(1.0, chip.w, chip.h)
    out_x = max(chip.x - rect.x, rect.x2 - chip.x2)
    out_y = rect.y2 - chip.y2 if check_chip_height else 0.0
    out_y = max(out_y, chip.y - rect.y)
    worst = max(out_x, out_y)
    if worst > eps * span:
        report.violations.append(Violation(
            "geometry", p.name, worst,
            f"module {p.name} extends {worst:.4g} outside the chip"))

    if not p.envelope.contains_rect(rect, eps * span):
        report.violations.append(Violation(
            "geometry", p.name, 0.0,
            f"module {p.name}'s envelope does not contain its rectangle"))

    module = p.module
    if module.flexible:
        area_drift = abs(rect.area - module.area)
        if area_drift > eps * max(1.0, module.area):
            report.violations.append(Violation(
                "geometry", p.name, area_drift,
                f"flexible module {p.name} realizes area {rect.area:.6g} "
                f"but the invariant is {module.area:.6g}"))
        if rect.h > eps:
            aspect = rect.w / rect.h
            rel = eps * max(1.0, module.aspect_high)
            if aspect < module.aspect_low - rel or \
                    aspect > module.aspect_high + rel:
                report.violations.append(Violation(
                    "geometry", p.name, aspect,
                    f"flexible module {p.name} aspect {aspect:.4g} outside "
                    f"[{module.aspect_low:.4g}, {module.aspect_high:.4g}]"))
    else:
        want_w, want_h = (module.height, module.width) if p.rotated \
            else (module.width, module.height)
        drift = max(abs(rect.w - want_w), abs(rect.h - want_h))
        if drift > eps * max(1.0, want_w, want_h):
            report.violations.append(Violation(
                "geometry", p.name, drift,
                f"rigid module {p.name} realizes {rect.w:.6g}x{rect.h:.6g} "
                f"but rotated={p.rotated} implies "
                f"{want_w:.6g}x{want_h:.6g}"))


def check_outline(placements: Sequence["Placement"],
                  outline: tuple[float, float], *,
                  claimed_whitespace: float | None = None,
                  eps: float = CHECK_EPS) -> GeometryReport:
    """Fixed-outline audits: containment in the die and whitespace accounting.

    Checks, independently of the formulation and the feasibility search:

    * every module rectangle lies inside the fixed die ``(0,0)-(W,H)``;
    * the die is at least as large as the total placed module area (a
      violated packing bound means the geometry is lying somewhere);
    * when a whitespace figure is claimed, it matches
      ``(W*H - module_area) / (W*H)`` recomputed from the placements.

    Args:
        placements: the realized placements.
        outline: the fixed die ``(W, H)``.
        claimed_whitespace: the whitespace fraction the result claims for
            the die, audited against the recomputed value when given.
        eps: geometric tolerance.
    """
    width, height = outline
    die = Rect(0.0, 0.0, width, height)
    report = GeometryReport(n_placements=len(placements))
    span = max(1.0, width, height)

    for p in placements:
        rect = p.rect
        worst = max(die.x - rect.x, die.y - rect.y,
                    rect.x2 - die.x2, rect.y2 - die.y2)
        if worst > eps * span:
            report.violations.append(Violation(
                "geometry", p.name, worst,
                f"module {p.name} extends {worst:.4g} outside the fixed "
                f"outline {width:.6g}x{height:.6g}"))

    module_area = sum(p.rect.area for p in placements)
    die_area = width * height
    if module_area > die_area + eps * max(1.0, die_area):
        report.violations.append(Violation(
            "geometry", "outline", module_area - die_area,
            f"total module area {module_area:.6g} exceeds the die area "
            f"{die_area:.6g}"))

    if claimed_whitespace is not None and die_area > 0:
        actual = (die_area - module_area) / die_area
        drift = abs(actual - claimed_whitespace)
        if drift > max(eps, 1e-9 * max(1.0, die_area)):
            report.violations.append(Violation(
                "geometry", "whitespace", drift,
                f"claimed whitespace {claimed_whitespace:.6g} does not "
                f"match the recomputed {actual:.6g}"))
    return report


def check_floorplan(plan: "Floorplan", eps: float = CHECK_EPS) -> GeometryReport:
    """Full independent validation of a completed floorplan.

    Combines :func:`check_placements` over the final geometry with the
    completeness check (every netlist module placed), the fixed-outline
    audits (:func:`check_outline`) when the config declares a die, and,
    when the trace recorded snapshots, a per-step :func:`check_cover` of
    the covering rectangles each subproblem was solved against.
    """
    report = check_placements(list(plan.placements.values()), plan.chip,
                              eps=eps)
    missing = set(plan.netlist.module_names) - set(plan.placements)
    for name in sorted(missing):
        report.violations.append(Violation(
            "completeness", name, math.inf,
            f"module {name} was never placed"))
    extra = set(plan.placements) - set(plan.netlist.module_names)
    for name in sorted(extra):
        report.violations.append(Violation(
            "completeness", name, math.inf,
            f"placement {name} does not correspond to a netlist module"))

    if plan.config.outline is not None:
        outline_report = check_outline(list(plan.placements.values()),
                                       plan.config.outline, eps=eps)
        report.violations.extend(outline_report.violations)

    for step in plan.trace.steps:
        if step.snapshot is None or step.snapshot_obstacles is None:
            continue
        placed_before = [p.envelope for p in step.snapshot
                         if p.name not in step.group]
        if not placed_before:
            continue
        # The snapshot may come from a width-search candidate run at a
        # different chip width than the final plan reports, so derive the
        # covering-polygon span from the snapshot's own extent.
        x_min = min(0.0, *(r.x for r in placed_before))
        x_max = max(plan.chip_width, *(r.x2 for r in placed_before))
        cover = check_cover(placed_before, list(step.snapshot_obstacles),
                            x_min=x_min, x_max=x_max, eps=eps)
        report.n_cover_rects += cover.n_cover_rects
        for v in cover.violations:
            report.violations.append(Violation(
                v.kind, f"step{step.index}:{v.name}", v.magnitude,
                f"step {step.index}: {v.detail}"))
    return report
