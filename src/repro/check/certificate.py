"""Independent MILP certificate checking.

A solver's claim is only as trustworthy as its arithmetic: a silent big-M
bug, a mis-signed bound, or a loose integrality tolerance corrupts every
downstream floorplan number without any visible failure.  Following the
certificate-checking discipline of SMT-based floorplanning work, this module
re-evaluates a :class:`~repro.milp.solution.Solution` against the *raw
standard form* of its model — plain NumPy arithmetic with no shared code
path through the solver backends — and reports every discrepancy:

* constraint residuals (``row_lb <= A x <= row_ub``) beyond a row-scaled
  feasibility tolerance;
* variable bound violations;
* integrality of binary/integer columns within ``int_tol``;
* the claimed objective versus the recomputed ``c @ x + c0``;
* dual-bound consistency — the bound may never cut off the incumbent, and
  an ``OPTIMAL`` claim must carry a bound that verifies the gap.

The checker never raises on a bad solution; it returns a
:class:`CertificateReport` whose :attr:`~CertificateReport.violations` list
is empty exactly when the claim is certified.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.milp.model import Model, StandardForm
from repro.milp.solution import Solution, SolveStatus

#: Default absolute feasibility tolerance, scaled per row by the activity
#: magnitude (LP solutions carry ~1e-9 noise; big-M rows amplify it).
FEAS_TOL = 1e-6
#: Default relative tolerance for objective and bound comparisons.
OBJ_TOL = 1e-6


@dataclass(frozen=True)
class Violation:
    """One certified discrepancy between a solution and its model.

    Attributes:
        kind: violation class — ``"constraint"``, ``"variable-bound"``,
            ``"integrality"``, ``"objective"``, ``"bound"``,
            ``"missing-value"``, or ``"geometry"`` (geometry checks reuse
            this record type).
        name: the constraint/variable (or geometric entity) concerned.
        magnitude: how large the discrepancy is, in the check's own units.
        detail: human-readable description.
    """

    kind: str
    name: str
    magnitude: float
    detail: str

    def to_dict(self) -> dict[str, Any]:
        """A JSON-safe representation."""
        return {"kind": self.kind, "name": self.name,
                "magnitude": self.magnitude, "detail": self.detail}

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "Violation":
        """Rebuild from :meth:`to_dict` output."""
        return cls(kind=data["kind"], name=data["name"],
                   magnitude=float(data["magnitude"]), detail=data["detail"])


@dataclass
class CertificateReport:
    """Outcome of independently re-checking one solve.

    Attributes:
        backend: backend that produced the checked solution.
        status: the solution's claimed :class:`SolveStatus` value.
        n_constraints: constraint rows re-evaluated.
        n_variables: variable columns re-evaluated.
        claimed_objective: the solution's reported objective.
        recomputed_objective: ``c @ x + c0`` evaluated by the checker
            (NaN when the status carries no values).
        claimed_bound: the solution's reported dual bound.
        verified_gap: relative gap recomputed from the claimed bound and
            the *recomputed* objective (NaN when either is unavailable).
        violations: every certified discrepancy (empty = certified).
    """

    backend: str = ""
    status: str = ""
    n_constraints: int = 0
    n_variables: int = 0
    claimed_objective: float = math.nan
    recomputed_objective: float = math.nan
    claimed_bound: float = math.nan
    verified_gap: float = math.nan
    violations: list[Violation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when no violations were found."""
        return not self.violations

    def to_dict(self) -> dict[str, Any]:
        """A JSON-safe representation (NaN floats become None)."""

        def safe(value: float) -> float | None:
            return None if not math.isfinite(value) else value

        return {
            "backend": self.backend,
            "status": self.status,
            "n_constraints": self.n_constraints,
            "n_variables": self.n_variables,
            "claimed_objective": safe(self.claimed_objective),
            "recomputed_objective": safe(self.recomputed_objective),
            "claimed_bound": safe(self.claimed_bound),
            "verified_gap": safe(self.verified_gap),
            "ok": self.ok,
            "violations": [v.to_dict() for v in self.violations],
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "CertificateReport":
        """Rebuild a report from :meth:`to_dict` output."""

        def num(value: Any) -> float:
            return math.nan if value is None else float(value)

        return cls(
            backend=data.get("backend", ""),
            status=data.get("status", ""),
            n_constraints=data.get("n_constraints", 0),
            n_variables=data.get("n_variables", 0),
            claimed_objective=num(data.get("claimed_objective")),
            recomputed_objective=num(data.get("recomputed_objective")),
            claimed_bound=num(data.get("claimed_bound")),
            verified_gap=num(data.get("verified_gap")),
            violations=[Violation.from_dict(v)
                        for v in data.get("violations", [])],
        )


def check_certificate(model: Model, solution: Solution, *,
                      feas_tol: float = FEAS_TOL, int_tol: float = 1e-6,
                      obj_tol: float = OBJ_TOL,
                      mip_rel_gap: float = 1e-4,
                      form: StandardForm | None = None) -> CertificateReport:
    """Independently certify ``solution`` against ``model``'s standard form.

    Args:
        model: the model the solution claims to solve.
        solution: the backend's result.
        feas_tol: feasibility tolerance, scaled per row by
            ``1 + sum |a_ij x_j|`` so big-M rows are judged fairly.
        int_tol: integrality tolerance for binary/integer columns.
        obj_tol: relative tolerance for objective/bound comparisons.
        mip_rel_gap: the gap at which an ``OPTIMAL`` claim is accepted
            (matches the solver's own stopping tolerance).
        form: a precomputed standard form of ``model`` (avoids re-export).

    Returns:
        A :class:`CertificateReport`; statuses without solution values
        (INFEASIBLE, UNBOUNDED, LIMIT, ERROR) are vacuously certified —
        refuting those claims would need dual certificates the backends do
        not emit.
    """
    form = form if form is not None else model.to_standard_form()
    report = CertificateReport(
        backend=solution.backend,
        status=solution.status.value,
        claimed_objective=solution.objective,
        claimed_bound=solution.bound,
    )
    if not solution.status.has_solution:
        return report

    n = len(form.variables)
    x = np.full(n, math.nan)
    for j, var in enumerate(form.variables):
        value = solution.values.get(var)
        if value is None:
            report.violations.append(Violation(
                "missing-value", var.name, math.inf,
                f"status {solution.status.value} claims a solution but "
                f"variable {var.name!r} has no value"))
        else:
            x[j] = float(value)
    if np.isnan(x).any():
        return report
    report.n_variables = n
    report.n_constraints = form.a_matrix.shape[0]

    row_names = [c.name for c in model.constraints]
    _check_variable_bounds(form, x, feas_tol, report)
    _check_integrality(form, x, int_tol, report)
    _check_rows(form, x, row_names, feas_tol, report)
    _check_objective(form, solution, x, obj_tol, report)
    _check_bound(solution, form.maximize, mip_rel_gap, obj_tol, report)
    return report


def _check_variable_bounds(form: StandardForm, x: np.ndarray,
                           feas_tol: float, report: CertificateReport) -> None:
    for j, var in enumerate(form.variables):
        scale = 1.0 + abs(x[j])
        below = form.lb[j] - x[j]
        above = x[j] - form.ub[j]
        worst = max(below, above)
        if worst > feas_tol * scale:
            report.violations.append(Violation(
                "variable-bound", var.name, worst,
                f"{var.name} = {x[j]:.9g} outside "
                f"[{form.lb[j]:.9g}, {form.ub[j]:.9g}]"))


def _check_integrality(form: StandardForm, x: np.ndarray, int_tol: float,
                       report: CertificateReport) -> None:
    int_cols = np.flatnonzero(form.integrality == 1)
    for j in int_cols:
        drift = abs(x[j] - round(x[j]))
        if drift > int_tol:
            report.violations.append(Violation(
                "integrality", form.variables[j].name, drift,
                f"{form.variables[j].name} = {x[j]:.9g} is {drift:.3g} "
                f"from the nearest integer (int_tol {int_tol:g})"))


def _check_rows(form: StandardForm, x: np.ndarray, row_names: list[str],
                feas_tol: float, report: CertificateReport) -> None:
    activity = form.a_matrix @ x
    abs_matrix = form.a_matrix.copy()
    abs_matrix.data = np.abs(abs_matrix.data)
    scale = 1.0 + abs_matrix @ np.abs(x)
    below = form.row_lb - activity
    above = activity - form.row_ub
    residual = np.maximum(below, above)
    for i in np.flatnonzero(residual > feas_tol * scale):
        name = row_names[i] if i < len(row_names) else f"row{i}"
        report.violations.append(Violation(
            "constraint", name, float(residual[i]),
            f"row {i}: activity {activity[i]:.9g} outside "
            f"[{form.row_lb[i]:.9g}, {form.row_ub[i]:.9g}] "
            f"(residual {residual[i]:.3g}, scaled tol "
            f"{feas_tol * scale[i]:.3g})"))


def _check_objective(form: StandardForm, solution: Solution, x: np.ndarray,
                     obj_tol: float, report: CertificateReport) -> None:
    recomputed = float(form.c @ x) + form.c0
    if form.maximize:
        recomputed = -recomputed
    report.recomputed_objective = recomputed
    claimed = solution.objective
    if math.isnan(claimed):
        report.violations.append(Violation(
            "objective", "objective", math.inf,
            f"status {solution.status.value} carries values but no "
            f"objective"))
        return
    drift = abs(claimed - recomputed)
    if drift > obj_tol * max(1.0, abs(recomputed)):
        report.violations.append(Violation(
            "objective", "objective", drift,
            f"claimed objective {claimed:.9g} but c @ x + c0 = "
            f"{recomputed:.9g}"))


def _check_bound(solution: Solution, maximize: bool, mip_rel_gap: float,
                 obj_tol: float, report: CertificateReport) -> None:
    """Bound sanity in the model's own sense: the dual bound may never be
    on the wrong side of the recomputed objective, and an OPTIMAL claim
    must carry a bound that closes the gap."""
    bound = solution.bound
    objective = report.recomputed_objective
    if math.isnan(objective):
        return
    if math.isnan(bound):
        if solution.status is SolveStatus.OPTIMAL:
            report.violations.append(Violation(
                "bound", "bound", math.inf,
                "OPTIMAL claim carries no dual bound, so the zero gap "
                "cannot be verified"))
        return
    tol = obj_tol * max(1.0, abs(objective))
    overshoot = (bound - objective) if not maximize else (objective - bound)
    if overshoot > tol:
        side = "above" if not maximize else "below"
        report.violations.append(Violation(
            "bound", "bound", overshoot,
            f"dual bound {bound:.9g} lies {side} the feasible objective "
            f"{objective:.9g} — the bound cuts off the incumbent"))
    gap = abs(objective - bound) / max(1.0, abs(objective))
    report.verified_gap = gap
    if solution.status is SolveStatus.OPTIMAL and \
            gap > max(mip_rel_gap, obj_tol) * (1.0 + obj_tol):
        report.violations.append(Violation(
            "bound", "gap", gap,
            f"OPTIMAL claim but the verified gap is {gap:.3g} "
            f"(allowed {max(mip_rel_gap, obj_tol):.3g})"))
