"""Cross-backend differential fuzzing of the MILP solver stack.

With four independent solving paths (HiGHS via SciPy, the from-scratch
branch-and-bound, the pure-NumPy simplex, the LP-free difference-logic
``smt`` search) plus a racing portfolio, subtle disagreements are the
expected failure mode — exactly what Huchette et al. observe across
floor-layout formulation variants.  This harness generates seeded random
instances (pure LPs, boxed random MILPs, and floorplan-shaped subproblems
straight from :class:`SubproblemBuilder`), runs every applicable backend on
the identical model — each both raw and through the presolve layer
(``"<backend>+presolve"``) — cross-checks the claims, and greedily shrinks
any disagreement to a minimal JSON reproducer.

With the formulation axis on (the default), every floorplan-shaped case is
generated *twice from the same random state* — once per registered
non-overlap encoding (``bigm`` and ``unary``) — and the full
backend x presolve variant matrix runs on each.  The encodings share the
instance, so beyond the per-encoding consistency rules below, any two
OPTIMAL claims across encodings must agree on the objective, and an
INFEASIBLE claim under one encoding contradicts an OPTIMAL claim under the
other.  Variable spaces differ across encodings, so assignments are never
compared — only claims.

Comparison semantics (all instances have finite variable boxes, so
``UNBOUNDED`` is never legitimate):

* a raised exception is a ``crash`` finding for that backend;
* any returned incumbent must pass the independent certificate checker
  (``bad-certificate`` otherwise);
* ``INFEASIBLE`` contradicts any *certified* feasible incumbent elsewhere;
* two ``OPTIMAL`` claims must agree on the objective within tolerance;
* a certified feasible incumbent may never beat a proven optimum.

``LIMIT``/``TIMEOUT``/``ERROR`` results are inconclusive: counted, but not
disagreements.
"""

from __future__ import annotations

import json
import math
import random
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Sequence

from repro.check.certificate import check_certificate
from repro.milp.expr import VarKind, lin_sum
from repro.milp.model import Model, ObjectiveSense
from repro.milp.solution import Solution, SolveStatus
from repro.milp.solvers.registry import available_backends, solve_many
from repro.milp.solvers.smt_dl import supports_model as _smt_supports
from repro.serialize import model_from_dict, model_to_dict

#: Relative tolerance when comparing objective claims across backends.
CROSS_OBJ_TOL = 1e-5
#: mip_rel_gap passed to every backend so OPTIMAL claims are tight.
FUZZ_GAP = 1e-6


# ---------------------------------------------------------------------------
# instance generation
# ---------------------------------------------------------------------------

def generate_model(rng: random.Random) -> Model:
    """One seeded random instance: ~40% pure LP, ~40% boxed MILP, ~20%
    floorplan-shaped subproblem."""
    roll = rng.random()
    if roll < 0.4:
        return _random_boxed(rng, integers=False)
    if roll < 0.8:
        return _random_boxed(rng, integers=True)
    return _floorplan_shaped(rng)


def generate_case(rng: random.Random, *,
                  formulation_axis: bool = True,
                  outline_axis: bool = True,
                  eco_axis: bool = True) -> dict[str, Model]:
    """One seeded case as ``{encoding label: model}``.

    Random LPs/MILPs have no encoding axis and come back under the single
    empty label.  Floorplan-shaped cases with ``formulation_axis`` are
    built once per registered non-overlap encoding *from the identical
    random state*, so the pair models the same instance and the optimal
    objectives must coincide.  With ``outline_axis``, half the
    floorplan-shaped cases (rolled *before* the shared state is captured,
    so every encoding sees the same die) carry a fixed-outline chip-height
    cap — the cap makes INFEASIBLE a legitimate claim, which every
    backend and encoding must then agree on.  With ``eco_axis``, half of
    them are ECO-window shaped: obstacles lifted off the floor — the shape
    :func:`repro.core.eco.solve_eco` subproblems take when a frozen
    placement hangs over a hole and ``use_covering_rectangles`` is off
    (the frozen envelopes pass through verbatim).  Window modules may then
    legally slide *under* an obstacle, a branching pattern the cold
    augmentation loop never generates.
    """
    roll = rng.random()
    if roll < 0.4:
        return {"": _random_boxed(rng, integers=False)}
    if roll < 0.8:
        return {"": _random_boxed(rng, integers=True)}
    use_outline = outline_axis and rng.random() < 0.5
    use_eco = eco_axis and rng.random() < 0.5
    if not formulation_axis:
        return {"": _floorplan_shaped(rng, outline=use_outline, eco=use_eco)}
    from repro.core.config import FORMULATIONS

    state = rng.getstate()
    case: dict[str, Model] = {}
    for formulation in FORMULATIONS:
        rng.setstate(state)
        case[formulation] = _floorplan_shaped(rng, formulation=formulation,
                                              outline=use_outline,
                                              eco=use_eco)
    return case


def _random_boxed(rng: random.Random, *, integers: bool) -> Model:
    """A random model over finite variable boxes with small integer data.

    Most constraints are anchored to a random interior point so feasible
    instances dominate, with a minority of free-rhs rows to also exercise
    INFEASIBLE paths.  Finite boxes rule out unboundedness by construction.
    """
    model = Model("fuzz")
    n = rng.randint(2, 6)
    variables = []
    for j in range(n):
        if integers and rng.random() < 0.5:
            if rng.random() < 0.5:
                var = model.add_binary(f"b{j}")
            else:
                var = model.add_var(f"i{j}", 0.0, rng.randint(1, 6),
                                    VarKind.INTEGER)
        else:
            var = model.add_continuous(f"x{j}", 0.0, float(rng.randint(1, 10)))
        variables.append(var)

    anchor = [rng.uniform(v.lb, v.ub) for v in variables]
    for i in range(rng.randint(1, 2 * n)):
        coeffs = [rng.randint(-5, 5) for _ in variables]
        if not any(coeffs):
            coeffs[rng.randrange(n)] = 1
        expr = lin_sum(c * v for c, v in zip(coeffs, variables) if c)
        at_anchor = sum(c * a for c, a in zip(coeffs, anchor))
        sense_le = rng.random() < 0.5
        if rng.random() < 0.8:                        # feasible at anchor
            slack = rng.uniform(0.0, 5.0)
            rhs = at_anchor + slack if sense_le else at_anchor - slack
        else:
            rhs = float(rng.randint(-20, 20))         # may cut everything off
        model.add_constraint(expr <= rhs if sense_le else expr >= rhs,
                             name=f"c{i}")

    obj_coeffs = [rng.randint(-4, 4) for _ in variables]
    if not any(obj_coeffs):
        obj_coeffs[0] = 1
    objective = lin_sum(c * v for c, v in zip(obj_coeffs, variables) if c)
    sense = ObjectiveSense.MAX if rng.random() < 0.5 else ObjectiveSense.MIN
    model.set_objective(objective + rng.randint(-3, 3), sense)
    return model


def _floorplan_shaped(rng: random.Random, *,
                      formulation: str = "bigm",
                      outline: bool = False,
                      eco: bool = False) -> Model:
    """A small real subproblem from :class:`SubproblemBuilder`: 1-2 window
    modules over 0-2 covering rectangles on a chip wide enough to be
    feasible, non-overlap encoded per ``formulation``.  With ``outline``,
    the subproblem carries a random fixed-outline height cap — tight
    enough to make some instances genuinely infeasible.  With ``eco``,
    obstacles float at a random height above the floor, mirroring the
    windowed ECO subforms where a frozen placement (passed verbatim, no
    covering-rectangle fill) leaves a reachable hole beneath itself."""
    from repro.core.config import FloorplanConfig
    from repro.core.formulation import SubproblemBuilder
    from repro.geometry.rect import Rect
    from repro.netlist.module import Module

    n_window = rng.randint(1, 2)
    window = []
    for k in range(n_window):
        if rng.random() < 0.3:
            window.append(Module.flexible_area(
                f"f{k}", area=float(rng.randint(2, 8)),
                aspect_low=0.5, aspect_high=2.0))
        else:
            window.append(Module.rigid(
                f"m{k}", float(rng.randint(1, 4)), float(rng.randint(1, 4)),
                rotatable=True))

    chip_width = 10.0
    obstacles = []
    x = 0.0
    for _ in range(rng.randint(0, 2)):
        w = float(rng.randint(1, 3))
        h = float(rng.randint(1, 3))
        if x + w > chip_width:
            break
        y = float(rng.randint(1, 3)) if eco else 0.0
        obstacles.append(Rect(x, y, w, h))
        x += w + 1.0

    config = FloorplanConfig(
        chip_width=chip_width,
        allow_rotation=rng.random() < 0.5,
        use_envelopes=False,
        record_snapshots=False,
        formulation=formulation,
    )
    outline_height = float(rng.randint(2, 7)) if outline else None
    builder = SubproblemBuilder(window, obstacles, chip_width, config,
                                outline_height=outline_height)
    return builder.model


# ---------------------------------------------------------------------------
# differential comparison
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Disagreement:
    """One cross-backend inconsistency on a single model.

    Attributes:
        kind: ``"crash"``, ``"bad-certificate"``, ``"status"``,
            ``"objective"``, or ``"beats-proven-optimum"``.
        detail: human-readable description.
        backends: the backends implicated.
    """

    kind: str
    detail: str
    backends: tuple[str, ...]

    def to_dict(self) -> dict[str, Any]:
        """A JSON-safe representation."""
        return {"kind": self.kind, "detail": self.detail,
                "backends": list(self.backends)}


def backends_for(model: Model,
                 backends: Sequence[str] | None = None) -> tuple[str, ...]:
    """The registered backends applicable to ``model`` (the pure-LP-only
    simplex is excluded for integer models; the difference-logic ``smt``
    search is excluded for models outside its fragment)."""
    names = tuple(backends) if backends else available_backends()
    out = []
    for name in names:
        if name == "simplex" and not model.is_pure_lp():
            continue
        if name == "smt" and not _smt_supports(model):
            continue
        out.append(name)
    return tuple(out)


def _variant_plan(model: Model, backends: Sequence[str] | None,
                  presolve_axis: bool, node_store_axis: bool
                  ) -> list[tuple[str, str, bool, tuple]]:
    """The (label, backend, presolve, extra-options) variants for ``model``."""
    plan: list[tuple[str, str, bool, tuple]] = []
    for name in backends_for(model, backends):
        plan.append((name, name, False, ()))
        if presolve_axis:
            plan.append((f"{name}+presolve", name, True, ()))
        if node_store_axis and name == "bnb" and not model.is_pure_lp():
            plan.append((f"{name}+scalar", name, False,
                         (("node_store", "objects"),)))
    return plan


def run_differential_batch(models: Sequence[Model], *,
                           backends: Sequence[str] | None = None,
                           time_limit: float = 10.0,
                           obj_tol: float = CROSS_OBJ_TOL,
                           presolve_axis: bool = True,
                           node_store_axis: bool = True,
                           workers: int | None = 1
                           ) -> list[tuple[dict[str, Solution],
                                           list[Disagreement]]]:
    """Differentially test a vector of models through batched solving.

    Each model runs the same variant matrix as :func:`run_differential`,
    but instances sharing a variant are solved through one
    :func:`repro.milp.solvers.registry.solve_many` call — standard forms
    canonicalize once per instance instead of once per variant, and the
    batch can fan out over processes with ``workers``.  Per-model results
    are identical to looping :func:`run_differential` (solves are
    independent; ``on_error="capture"`` keeps a crashing variant from
    aborting the batch — a crash is a finding).

    Returns one ``(results, disagreements)`` pair per model, in order.
    """
    model_list = list(models)
    plans = [_variant_plan(m, backends, presolve_axis, node_store_axis)
             for m in model_list]
    groups: dict[tuple[str, str, bool, tuple], list[int]] = {}
    for i, plan in enumerate(plans):
        for spec in plan:
            groups.setdefault(spec, []).append(i)
    solved: dict[tuple[int, str], Solution] = {}
    for (label, name, use_presolve, extra), idxs in groups.items():
        batch = solve_many([model_list[i] for i in idxs], backend=name,
                           presolve=use_presolve, time_limit=time_limit,
                           mip_rel_gap=FUZZ_GAP, workers=workers,
                           on_error="capture", **dict(extra))
        for i, sol in zip(idxs, batch):
            solved[(i, label)] = sol
    out: list[tuple[dict[str, Solution], list[Disagreement]]] = []
    for i, (model, plan) in enumerate(zip(model_list, plans)):
        results: dict[str, Solution] = {}
        disagreements: list[Disagreement] = []
        for label, _name, _presolve, _extra in plan:
            sol = solved[(i, label)]
            results[label] = sol
            if sol.status is SolveStatus.ERROR \
                    and sol.message.startswith("raised "):
                disagreements.append(Disagreement(
                    "crash", f"{label} {sol.message}", (label,)))
        disagreements.extend(compare_results(model, results, obj_tol=obj_tol))
        out.append((results, disagreements))
    return out


def run_differential(model: Model, *, backends: Sequence[str] | None = None,
                     time_limit: float = 10.0,
                     obj_tol: float = CROSS_OBJ_TOL,
                     presolve_axis: bool = True,
                     node_store_axis: bool = True
                     ) -> tuple[dict[str, Solution], list[Disagreement]]:
    """Run every applicable backend on ``model`` and cross-check the claims.

    With ``presolve_axis`` (the default) every backend is run twice — raw and
    through the :mod:`repro.milp.presolve` layer (reported under the
    ``"<backend>+presolve"`` key) — so presolve bugs that cut the optimum or
    corrupt the postsolve mapping surface as cross-variant disagreements on
    the identical model.  With ``node_store_axis`` (the default) integer
    models additionally run the branch-and-bound with its scalar object
    frontier (``"bnb+scalar"``), pinning the vectorized array frontier
    against the reference store on every fuzzed instance.

    Returns the per-variant solutions (crashes become synthetic ERROR
    solutions) and the list of disagreements (empty = all consistent).
    """
    [(results, disagreements)] = run_differential_batch(
        [model], backends=backends, time_limit=time_limit, obj_tol=obj_tol,
        presolve_axis=presolve_axis, node_store_axis=node_store_axis)
    return results, disagreements


def compare_results(model: Model, results: dict[str, Solution], *,
                    obj_tol: float = CROSS_OBJ_TOL) -> list[Disagreement]:
    """Cross-check backend claims on the same model (see module docstring
    for the semantics)."""
    form = model.to_standard_form()
    disagreements: list[Disagreement] = []

    certified: dict[str, float] = {}  # backend -> recomputed objective
    optimal: dict[str, float] = {}
    infeasible: list[str] = []
    unbounded: list[str] = []
    for name, sol in results.items():
        if sol.status.has_solution:
            report = check_certificate(model, sol, form=form,
                                       mip_rel_gap=FUZZ_GAP * 10)
            if not report.ok:
                worst = report.violations[0]
                disagreements.append(Disagreement(
                    "bad-certificate",
                    f"{name} returned a {sol.status.value} solution that "
                    f"fails certification: {worst.detail} "
                    f"(+{len(report.violations) - 1} more)"
                    if len(report.violations) > 1 else
                    f"{name} returned a {sol.status.value} solution that "
                    f"fails certification: {worst.detail}", (name,)))
                continue
            certified[name] = report.recomputed_objective
            if sol.status is SolveStatus.OPTIMAL:
                optimal[name] = report.recomputed_objective
        elif sol.status is SolveStatus.INFEASIBLE:
            infeasible.append(name)
        elif sol.status is SolveStatus.UNBOUNDED:
            unbounded.append(name)
        # LIMIT / ERROR: inconclusive, nothing to compare.

    if infeasible and certified:
        feasible_names = sorted(certified)
        disagreements.append(Disagreement(
            "status",
            f"{', '.join(infeasible)} claim INFEASIBLE but "
            f"{', '.join(feasible_names)} produced certified feasible "
            f"solutions", tuple(infeasible) + tuple(feasible_names)))
    if unbounded and (certified or infeasible):
        others = sorted(set(results) - set(unbounded))
        disagreements.append(Disagreement(
            "status",
            f"{', '.join(unbounded)} claim UNBOUNDED on a finite-box model "
            f"contradicted by {', '.join(others)}",
            tuple(unbounded) + tuple(others)))

    if len(optimal) >= 2:
        names = sorted(optimal)
        lo_name = min(names, key=lambda n: optimal[n])
        hi_name = max(names, key=lambda n: optimal[n])
        spread = optimal[hi_name] - optimal[lo_name]
        scale = max(1.0, abs(optimal[lo_name]), abs(optimal[hi_name]))
        if spread > obj_tol * scale:
            disagreements.append(Disagreement(
                "objective",
                f"OPTIMAL objectives disagree: {lo_name} = "
                f"{optimal[lo_name]:.9g} vs {hi_name} = "
                f"{optimal[hi_name]:.9g}", (lo_name, hi_name)))

    if optimal:
        maximize = model.objective_sense is ObjectiveSense.MAX
        best_proven = max(optimal.values()) if maximize else min(optimal.values())
        for name, value in certified.items():
            if name in optimal:
                continue
            margin = (value - best_proven) if maximize \
                else (best_proven - value)
            if margin > obj_tol * max(1.0, abs(best_proven)):
                disagreements.append(Disagreement(
                    "beats-proven-optimum",
                    f"{name}'s certified feasible objective {value:.9g} "
                    f"beats the proven optimum {best_proven:.9g}",
                    (name,) + tuple(sorted(optimal))))
    return disagreements


def compare_encodings(results_by_encoding: dict[str, dict[str, Solution]], *,
                      obj_tol: float = CROSS_OBJ_TOL) -> list[Disagreement]:
    """Cross-check claims across alternative encodings of one instance.

    The encodings model the identical placement instance, so their optimal
    objective values must coincide even though their variable spaces do
    not: any two OPTIMAL claims must agree within tolerance, and an
    INFEASIBLE claim under one encoding contradicts an OPTIMAL claim under
    another.  Per-encoding certificate and consistency checks are
    :func:`compare_results`'s job — this only compares *across*.
    """
    optimal: dict[str, float] = {}
    optimal_encoding: dict[str, str] = {}
    infeasible: list[tuple[str, str]] = []
    for encoding, results in results_by_encoding.items():
        for label, sol in results.items():
            key = f"{encoding}:{label}"
            if sol.status is SolveStatus.OPTIMAL:
                optimal[key] = sol.objective
                optimal_encoding[key] = encoding
            elif sol.status is SolveStatus.INFEASIBLE:
                infeasible.append((encoding, key))

    disagreements: list[Disagreement] = []
    cross_infeasible = [key for encoding, key in infeasible
                        if any(enc != encoding
                               for enc in optimal_encoding.values())]
    if cross_infeasible and optimal:
        names = sorted(optimal)
        disagreements.append(Disagreement(
            "encoding-status",
            f"{', '.join(sorted(cross_infeasible))} claim INFEASIBLE but "
            f"another encoding proved OPTIMAL ({', '.join(names)})",
            tuple(sorted(cross_infeasible)) + tuple(names)))
    if len(set(optimal_encoding.values())) >= 2:
        names = sorted(optimal)
        lo_name = min(names, key=lambda k: optimal[k])
        hi_name = max(names, key=lambda k: optimal[k])
        spread = optimal[hi_name] - optimal[lo_name]
        scale = max(1.0, abs(optimal[lo_name]), abs(optimal[hi_name]))
        if spread > obj_tol * scale:
            disagreements.append(Disagreement(
                "encoding-objective",
                f"OPTIMAL objectives disagree across encodings: {lo_name} = "
                f"{optimal[lo_name]:.9g} vs {hi_name} = "
                f"{optimal[hi_name]:.9g}", (lo_name, hi_name)))
    return disagreements


# ---------------------------------------------------------------------------
# shrinking
# ---------------------------------------------------------------------------

def shrink_model(data: dict[str, Any],
                 still_fails: Callable[[dict[str, Any]], bool], *,
                 max_evals: int = 200) -> tuple[dict[str, Any], int]:
    """Greedily minimize a serialized model while the failure reproduces.

    Tries, to a fixpoint: dropping each constraint, relaxing each integer
    variable to continuous, and collapsing each variable's box to its lower
    bound.  Each candidate is accepted only when ``still_fails`` holds, so
    the result still exhibits the original disagreement.

    Returns the minimized model dict and the number of evaluations used.
    """
    evals = 0

    def candidates(current: dict[str, Any]):
        for i in range(len(current["constraints"])):
            trimmed = dict(current)
            trimmed["constraints"] = (current["constraints"][:i]
                                      + current["constraints"][i + 1:])
            yield trimmed
        for j, var in enumerate(current["variables"]):
            if var["kind"] != VarKind.CONTINUOUS.value:
                relaxed = json.loads(json.dumps(current))
                relaxed["variables"][j]["kind"] = VarKind.CONTINUOUS.value
                yield relaxed
        for j, var in enumerate(current["variables"]):
            if var["lb"] is not None and var["ub"] != var["lb"]:
                fixed = json.loads(json.dumps(current))
                fixed["variables"][j]["ub"] = var["lb"]
                yield fixed

    current = data
    improved = True
    while improved and evals < max_evals:
        improved = False
        for candidate in candidates(current):
            if evals >= max_evals:
                break
            evals += 1
            if still_fails(candidate):
                current = candidate
                improved = True
                break
    return current, evals


# ---------------------------------------------------------------------------
# the fuzzing driver
# ---------------------------------------------------------------------------

@dataclass
class FuzzCase:
    """One disagreeing instance, with its minimized reproducer."""

    index: int
    case_seed: int
    disagreements: list[Disagreement]
    results: dict[str, dict[str, Any]]
    model: dict[str, Any]
    minimized: dict[str, Any]
    shrink_evals: int = 0

    def to_dict(self) -> dict[str, Any]:
        """A JSON-safe representation — this is the reproducer artifact."""
        return {
            "index": self.index,
            "case_seed": self.case_seed,
            "disagreements": [d.to_dict() for d in self.disagreements],
            "results": self.results,
            "model": self.model,
            "minimized": self.minimized,
            "shrink_evals": self.shrink_evals,
        }


@dataclass
class FuzzReport:
    """Outcome of one fuzzing campaign."""

    seed: int
    n_cases: int
    backends: tuple[str, ...]
    n_inconclusive: int = 0
    failures: list[FuzzCase] = field(default_factory=list)
    artifacts: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when every case ran all backends to agreement."""
        return not self.failures

    def to_dict(self) -> dict[str, Any]:
        """A JSON-safe summary (failures embed their reproducers)."""
        return {
            "seed": self.seed,
            "n_cases": self.n_cases,
            "backends": list(self.backends),
            "n_inconclusive": self.n_inconclusive,
            "n_failures": len(self.failures),
            "ok": self.ok,
            "artifacts": list(self.artifacts),
            "failures": [f.to_dict() for f in self.failures],
        }


def _solution_summary(sol: Solution) -> dict[str, Any]:
    def safe(value: float) -> float | None:
        return None if not math.isfinite(value) else value

    return {"status": sol.status.value, "objective": safe(sol.objective),
            "bound": safe(sol.bound), "backend": sol.backend,
            "message": sol.message}


def fuzz(n: int = 25, seed: int = 0, *,
         backends: Sequence[str] | None = None, time_limit: float = 10.0,
         obj_tol: float = CROSS_OBJ_TOL, shrink_budget: int = 200,
         artifact_dir: str | Path | None = None,
         presolve_axis: bool = True,
         formulation_axis: bool = True,
         outline_axis: bool = True,
         eco_axis: bool = True,
         workers: int | None = 1) -> FuzzReport:
    """Run a differential-fuzzing campaign of ``n`` seeded cases.

    All ``n`` cases are generated up front and pushed through one
    :func:`run_differential_batch` call, so canonicalization is amortized
    per instance and ``workers`` can spread the solves over processes.
    Every disagreement is shrunk to a minimal reproducer; with
    ``artifact_dir`` set, each reproducer is also written to
    ``fuzz_repro_seed<seed>_case<i>.json`` there.  ``presolve_axis``
    doubles every backend into raw / ``+presolve`` variants (see
    :func:`run_differential`); ``formulation_axis`` builds every
    floorplan-shaped case once per non-overlap encoding from the same
    random state and cross-checks the encodings' claims
    (:func:`compare_encodings`).  Multi-encoding failures embed all
    encodings in the reproducer and skip shrinking — shrinking one
    encoding in isolation would break the shared-instance invariant the
    cross-check relies on.  ``outline_axis`` gives half the
    floorplan-shaped cases a fixed-outline height cap (shared across
    encodings), exercising the INFEASIBLE paths of every backend.
    ``eco_axis`` lifts half of them into ECO-window shape — obstacles
    floating above the floor (see :func:`generate_case`) — so the solvers
    are also cross-checked on the subforms incremental re-floorplanning
    produces.
    """
    report = FuzzReport(seed=seed, n_cases=n,
                        backends=tuple(backends) if backends
                        else available_backends())
    inconclusive = {SolveStatus.LIMIT, SolveStatus.TIMEOUT, SolveStatus.ERROR}
    case_seeds = [seed * 1_000_003 + i for i in range(n)]
    cases = [generate_case(random.Random(s),
                           formulation_axis=formulation_axis,
                           outline_axis=outline_axis,
                           eco_axis=eco_axis)
             for s in case_seeds]
    flat_models: list[Model] = []
    layouts: list[dict[str, int]] = []
    for case in cases:
        layout = {}
        for label, model in case.items():
            layout[label] = len(flat_models)
            flat_models.append(model)
        layouts.append(layout)
    outcomes = run_differential_batch(
        flat_models, backends=backends, time_limit=time_limit,
        obj_tol=obj_tol, presolve_axis=presolve_axis, workers=workers)
    for i, (case, case_seed, layout) in enumerate(
            zip(cases, case_seeds, layouts)):
        results: dict[str, Solution] = {}
        disagreements: list[Disagreement] = []
        for label, flat_idx in layout.items():
            enc_results, enc_disagreements = outcomes[flat_idx]
            prefix = f"{label}:" if label else ""
            results.update({prefix + k: v for k, v in enc_results.items()})
            disagreements.extend(
                Disagreement(d.kind, f"[{label}] {d.detail}" if label
                             else d.detail,
                             tuple(prefix + b for b in d.backends))
                for d in enc_disagreements)
        if len(layout) > 1:
            disagreements.extend(compare_encodings(
                {label: outcomes[flat_idx][0]
                 for label, flat_idx in layout.items()}, obj_tol=obj_tol))
        report.n_inconclusive += sum(
            1 for s in results.values() if s.status in inconclusive)
        if not disagreements:
            continue

        if len(layout) > 1:
            data: dict[str, Any] = {"encodings": {
                label: model_to_dict(model) for label, model in case.items()}}
            minimized, evals = data, 0
        else:
            data = model_to_dict(case[""])

            def still_fails(candidate: dict[str, Any]) -> bool:
                try:
                    rebuilt = model_from_dict(candidate)
                    _, found = run_differential(rebuilt, backends=backends,
                                                time_limit=time_limit,
                                                obj_tol=obj_tol,
                                                presolve_axis=presolve_axis)
                except Exception:  # noqa: BLE001 — malformed shrink candidate
                    return False
                return bool(found)

            minimized, evals = shrink_model(data, still_fails,
                                            max_evals=shrink_budget)
        case_record = FuzzCase(
            index=i, case_seed=case_seed, disagreements=disagreements,
            results={b: _solution_summary(s) for b, s in results.items()},
            model=data, minimized=minimized, shrink_evals=evals)
        report.failures.append(case_record)
        if artifact_dir is not None:
            path = Path(artifact_dir)
            path.mkdir(parents=True, exist_ok=True)
            out = path / f"fuzz_repro_seed{seed}_case{i}.json"
            with open(out, "w") as f:
                json.dump(case_record.to_dict(), f, indent=1)
            report.artifacts.append(str(out))
    return report


def replay_reproducer(data: dict[str, Any], *, minimized: bool = True,
                      time_limit: float = 10.0
                      ) -> tuple[dict[str, Solution], list[Disagreement]]:
    """Re-run the backends on a saved reproducer artifact.

    Multi-encoding reproducers (``{"encodings": {label: model}}`` documents
    from formulation-axis cases) replay every encoding and append the
    cross-encoding findings; result keys come back ``"<label>:<variant>"``.

    Args:
        data: a loaded :meth:`FuzzCase.to_dict` document (or a bare
            :func:`~repro.serialize.model_to_dict` document).
        minimized: replay the minimized model rather than the original.
        time_limit: per-backend time limit.
    """
    if "variables" in data or "encodings" in data:  # bare (multi-)model doc
        model_data = data
    else:
        model_data = data["minimized"] if minimized else data["model"]
    if "encodings" in model_data:
        results: dict[str, Solution] = {}
        disagreements: list[Disagreement] = []
        per_encoding: dict[str, dict[str, Solution]] = {}
        for label, doc in model_data["encodings"].items():
            enc_results, enc_disagreements = run_differential(
                model_from_dict(doc), time_limit=time_limit)
            per_encoding[label] = enc_results
            results.update(
                {f"{label}:{k}": v for k, v in enc_results.items()})
            disagreements.extend(
                Disagreement(d.kind, f"[{label}] {d.detail}",
                             tuple(f"{label}:{b}" for b in d.backends))
                for d in enc_disagreements)
        disagreements.extend(compare_encodings(per_encoding))
        return results, disagreements
    model = model_from_dict(model_data)
    return run_differential(model, time_limit=time_limit)
