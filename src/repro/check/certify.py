"""Per-step and whole-floorplan certification (the ``certify`` flag).

Glue between the independent checkers and the floorplanning flow: when
:attr:`~repro.core.config.FloorplanConfig.certify` is on, every augmentation
subproblem's solution is re-certified against its raw standard form AND the
decoded geometry is re-validated, with the combined outcome recorded on the
:class:`~repro.core.augmentation.AugmentationStep` next to its telemetry.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Sequence

from repro.check.certificate import (
    CertificateReport,
    Violation,
    check_certificate,
)
from repro.check.geometry import (
    CHECK_EPS,
    GeometryReport,
    check_cover,
    check_floorplan,
    check_placements,
)
from repro.geometry.rect import Rect

if TYPE_CHECKING:
    from repro.core.config import FloorplanConfig
    from repro.core.floorplanner import Floorplan
    from repro.core.formulation import SubproblemBuilder
    from repro.core.placement import Placement
    from repro.milp.solution import Solution


@dataclass
class StepCertification:
    """Combined certification of one augmentation step.

    Attributes:
        certificate: the MILP certificate check of the step's solution.
        geometry: the geometric validation of the decoded placements
            against the chip, each other, and the covering rectangles.
    """

    certificate: CertificateReport
    geometry: GeometryReport

    @property
    def ok(self) -> bool:
        """True when both the certificate and the geometry check pass."""
        return self.certificate.ok and self.geometry.ok

    @property
    def violations(self) -> list[Violation]:
        """All violations from both checkers."""
        return list(self.certificate.violations) + list(self.geometry.violations)

    def to_dict(self) -> dict[str, Any]:
        """A JSON-safe representation."""
        return {"ok": self.ok,
                "certificate": self.certificate.to_dict(),
                "geometry": self.geometry.to_dict()}

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "StepCertification":
        """Rebuild from :meth:`to_dict` output."""
        return cls(certificate=CertificateReport.from_dict(data["certificate"]),
                   geometry=GeometryReport.from_dict(data["geometry"]))


def certify_subproblem(builder: "SubproblemBuilder", solution: "Solution",
                       new_placements: Sequence["Placement"],
                       prior_placements: Sequence["Placement"],
                       obstacles: Sequence[Rect], chip_width: float,
                       config: "FloorplanConfig") -> StepCertification:
    """Independently certify one augmentation step.

    Certificate side: the solution versus ``builder.model``'s standard form.
    Geometry side: the decoded window placements (pairwise disjoint, inside
    the chip width — the height is still open mid-augmentation), the window
    against the fixed covering rectangles, and the covering rectangles
    against the prior placements they replace (cover exactness plus the
    Theorem 1-2 bounds).
    """
    certificate = check_certificate(
        builder.model, solution,
        int_tol=config.int_tol,
        mip_rel_gap=config.mip_rel_gap,
    )

    chip = Rect(0.0, 0.0, chip_width, math.inf)
    geometry = check_placements(list(new_placements), chip,
                                check_chip_height=False)

    for p in new_placements:
        for k, obs in enumerate(obstacles):
            overlap = p.envelope.overlap_area(obs)
            if overlap > CHECK_EPS * max(1.0, min(p.envelope.area, obs.area)):
                geometry.violations.append(Violation(
                    "geometry", f"{p.name}|obstacle[{k}]", overlap,
                    f"module {p.name} overlaps covering rectangle {k} "
                    f"(area {overlap:.4g})"))

    prior_envelopes = [p.envelope for p in prior_placements]
    if prior_envelopes or obstacles:
        cover = check_cover(prior_envelopes, list(obstacles),
                            x_min=0.0, x_max=chip_width)
        geometry.n_cover_rects = cover.n_cover_rects
        geometry.violations.extend(cover.violations)

    return StepCertification(certificate=certificate, geometry=geometry)


def certify_floorplan(plan: "Floorplan") -> GeometryReport:
    """Independent whole-floorplan validation (final geometry only — the
    per-step MILP certificates live on the trace steps)."""
    return check_floorplan(plan)
