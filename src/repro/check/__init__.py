"""Independent correctness tooling: certificate checking, geometric
validation, and cross-backend differential fuzzing.

Nothing in this package shares arithmetic with the solver backends or the
MILP formulation — that independence is the point.  See
``docs/algorithms.md`` for what is checked and at which tolerances.
"""

from repro.check.certificate import (
    CertificateReport,
    Violation,
    check_certificate,
)
from repro.check.certify import (
    StepCertification,
    certify_floorplan,
    certify_subproblem,
)
from repro.check.eco import check_eco
from repro.check.fuzz import (
    Disagreement,
    FuzzCase,
    FuzzReport,
    compare_encodings,
    compare_results,
    fuzz,
    generate_case,
    generate_model,
    replay_reproducer,
    run_differential,
    shrink_model,
)
from repro.check.geometry import (
    GeometryReport,
    check_cover,
    check_floorplan,
    check_outline,
    check_placements,
    uncovered_area,
)

__all__ = [
    "CertificateReport",
    "Disagreement",
    "FuzzCase",
    "FuzzReport",
    "GeometryReport",
    "StepCertification",
    "Violation",
    "certify_floorplan",
    "certify_subproblem",
    "check_certificate",
    "check_cover",
    "check_eco",
    "check_floorplan",
    "check_outline",
    "check_placements",
    "compare_encodings",
    "compare_results",
    "fuzz",
    "generate_case",
    "generate_model",
    "replay_reproducer",
    "run_differential",
    "shrink_model",
    "uncovered_area",
]
