"""Independent validation of incremental-ECO results.

An :class:`~repro.core.eco.EcoResult` makes claims beyond ordinary
floorplan legality: that the frozen modules did not move, that every
placement is accounted for by the declared window/frozen partition, and
that the reported patched height is the realized one.  A patched plan that
silently moved a signed-off module is *worse* than a cold re-solve — the
whole point of ECO is that untouched placements stay untouched — so these
claims are re-derived here from the realized rectangles alone, sharing no
arithmetic with the engine in :mod:`repro.core.eco`.

Checks (all reported as :class:`~repro.check.certificate.Violation`
records, kind ``"eco"`` for the ECO-specific ones; never raises):

* full geometric legality of the merged plan via
  :func:`~repro.check.geometry.check_floorplan` (overlap, containment,
  rigid/flexible dimension audits, completeness, fixed-outline);
* the plan's netlist is exactly the delta applied to the baseline's;
* **frozen immobility** — every module in ``result.frozen`` sits at its
  baseline rectangle and envelope, bit-for-bit within tolerance;
* **partition** — every placement belongs to ``frozen`` or ``window``
  (a placement outside both escaped the declared provenance);
* **height claim** — ``result.patched_height`` matches the plan's chip
  height, which in turn bounds the recomputed maximum envelope top.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.check.certificate import Violation
from repro.check.geometry import CHECK_EPS, GeometryReport, check_floorplan

if TYPE_CHECKING:
    from repro.core.eco import EcoResult, NetlistDelta
    from repro.core.floorplanner import Floorplan


def check_eco(baseline: "Floorplan", delta: "NetlistDelta",
              result: "EcoResult", eps: float = CHECK_EPS) -> GeometryReport:
    """Re-derive every claim an ECO result makes, independently.

    Args:
        baseline: the certified plan the delta was applied against.
        delta: the structured edit.
        result: the engine's answer; ``result.plan`` is the merged plan
            under audit.
        eps: geometric tolerance (scaled by the chip span where sensible).

    Returns:
        A :class:`~repro.check.geometry.GeometryReport`; ``ok`` iff the
        merged plan is legal *and* every ECO-specific claim holds.
    """
    plan = result.plan
    if plan is None:
        report = GeometryReport()
        report.violations.append(Violation(
            "eco", "plan", float("inf"),
            f"result status {result.status!r} carries no plan to audit"))
        return report

    report = check_floorplan(plan, eps=eps)
    span = max(1.0, plan.chip_width, plan.chip_height)
    tol = eps * span

    # The plan must be the patched netlist, not some other circuit.  A
    # delta that no longer applies (the baseline changed underneath) is
    # surfaced as a violation rather than an exception.
    try:
        patched = delta.apply(baseline.netlist)
    except ValueError as exc:
        report.violations.append(Violation(
            "eco", "delta", float("inf"),
            f"delta does not apply to the baseline netlist: {exc}"))
        patched = None
    if patched is not None:
        want = set(patched.module_names)
        have = set(plan.netlist.module_names)
        for name in sorted(want ^ have):
            report.violations.append(Violation(
                "eco", name, float("inf"),
                f"module {name} {'missing from' if name in want else 'not in'}"
                f" the patched netlist the plan claims to realize"))

    # Frozen immobility: the signed-off rectangles must be verbatim.
    for name in result.frozen:
        prev = baseline.placements.get(name)
        cur = plan.placements.get(name)
        if prev is None or cur is None:
            report.violations.append(Violation(
                "eco", name, float("inf"),
                f"frozen module {name} is missing from the "
                f"{'baseline' if prev is None else 'patched'} plan"))
            continue
        drift = max(abs(cur.rect.x - prev.rect.x),
                    abs(cur.rect.y - prev.rect.y),
                    abs(cur.rect.w - prev.rect.w),
                    abs(cur.rect.h - prev.rect.h),
                    abs(cur.envelope.x - prev.envelope.x),
                    abs(cur.envelope.y - prev.envelope.y),
                    abs(cur.envelope.w - prev.envelope.w),
                    abs(cur.envelope.h - prev.envelope.h))
        if drift > tol:
            report.violations.append(Violation(
                "eco", name, drift,
                f"frozen module {name} moved {drift:.4g} from its baseline "
                f"placement"))

    # Partition: nothing may move outside the declared provenance.
    allowed = set(result.frozen) | set(result.window)
    for name in sorted(set(plan.placements) - allowed):
        report.violations.append(Violation(
            "eco", name, float("inf"),
            f"placement {name} belongs to neither the frozen set nor the "
            f"solve window"))

    # Height claim: the reported number must be the realized one.
    realized = max((p.envelope.y2 for p in plan.placements.values()),
                   default=0.0)
    claimed = result.patched_height
    if claimed is None or abs(claimed - plan.chip_height) > tol:
        report.violations.append(Violation(
            "eco", "patched_height",
            float("inf") if claimed is None
            else abs(claimed - plan.chip_height),
            f"claimed patched height {claimed} does not match the plan's "
            f"chip height {plan.chip_height:.6g}"))
    if realized > plan.chip_height + tol:
        report.violations.append(Violation(
            "eco", "chip_height", realized - plan.chip_height,
            f"placements reach {realized:.6g} above the claimed chip "
            f"height {plan.chip_height:.6g}"))
    return report
